package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"repro/internal/interfere"
	"repro/internal/iolib"
	"repro/internal/regions"
	"repro/internal/sheet"
	"repro/internal/workload"
)

// runInterfere implements the `sheetcli interfere` subcommand: it runs the
// parallel-safety certification (internal/interfere) over a workbook and
// reports whether the region set stages into certified parallel phases —
// and when it does not, which cells block it and why.
//
// Usage: sheetcli interfere [-json] [-rows n] [-seed n] [-max n] [file.svf]
func runInterfere(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("interfere", flag.ContinueOnError)
	fs.SetOutput(errOut)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	rows := fs.Int("rows", 5000, "rows of the generated weather dataset (ignored with a file argument)")
	seed := fs.Uint64("seed", 0, "generator seed; 0 means the default")
	maxList := fs.Int("max", 20, "max regions listed per stage; -1 removes the cap")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: sheetcli interfere [-json] [-rows n] [-seed n] [-max n] [file.svf]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rows < 0 {
		fmt.Fprintln(errOut, "sheetcli: -rows must be non-negative")
		return 2
	}

	var wb *sheet.Workbook
	if fs.NArg() > 0 {
		res, err := iolib.LoadWorkbook(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(errOut, "sheetcli: %v\n", err)
			return 1
		}
		wb = res.Workbook
	} else {
		wb = workload.Weather(workload.Spec{
			Rows: *rows, Formulas: true, Seed: *seed, Analysis: true,
		})
	}

	rep := interfereReportFor(wb)
	var err error
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
	} else {
		err = rep.writeText(out, *maxList)
	}
	if err != nil {
		fmt.Fprintf(errOut, "sheetcli: %v\n", err)
		return 1
	}
	return 0
}

// stageEntry is one certified stage: its regions may evaluate concurrently.
type stageEntry struct {
	Stage int `json:"stage"`
	// Regions lists the stage's members in A1 notation.
	Regions []string `json:"regions"`
	Cells   int      `json:"cells"`
}

// blockerEntry is one certification blocker.
type blockerEntry struct {
	// Cell anchors the blocker at its region's first cell.
	Cell string `json:"cell"`
	// Text is the region's relative R1C1 class text.
	Text string `json:"text"`
	// Reason says why the region cannot be staged.
	Reason string `json:"reason"`
	// Cells is the region height the blocker keeps serial.
	Cells int `json:"cells"`
}

// sheetInterfereReport is the certification summary for one worksheet.
type sheetInterfereReport struct {
	Sheet    string `json:"sheet"`
	Formulas int    `json:"formulas"`
	Regions  int    `json:"regions"`
	// Certified reports whether every region staged — the engine's staged
	// scheduler refuses the sheet otherwise.
	Certified bool `json:"certified"`
	// Stages counts the certified phases; Widest is the largest phase's
	// region count — the available parallelism.
	Stages int `json:"stages"`
	Widest int `json:"widest"`
	// Edges counts cross-region read dependencies the stages must respect.
	Edges     int            `json:"edges"`
	StageList []stageEntry   `json:"stage_list"`
	Blockers  []blockerEntry `json:"blockers"`
}

// interfereReport is the workbook-level report.
type interfereReport struct {
	Sheets    []*sheetInterfereReport `json:"sheets"`
	Certified bool                    `json:"certified"`
}

func interfereReportFor(wb *sheet.Workbook) *interfereReport {
	rep := &interfereReport{Certified: true}
	for _, s := range wb.Sheets() {
		sr := regions.Infer(s)
		cert := interfere.Analyze(sr)
		out := &sheetInterfereReport{
			Sheet:     s.Name,
			Formulas:  sr.Formulas,
			Regions:   cert.Regions,
			Certified: cert.OK,
			Stages:    cert.StageCount(),
			Widest:    cert.Widest(),
			Edges:     len(cert.Edges),
		}
		for i, stage := range cert.Stages {
			en := stageEntry{Stage: i}
			for _, ri := range stage {
				r := sr.Regions[ri]
				en.Regions = append(en.Regions, entryFor(r, sr).Range)
				en.Cells += r.Rows()
			}
			out.StageList = append(out.StageList, en)
		}
		for _, b := range cert.Blockers {
			out.Blockers = append(out.Blockers, blockerEntry{
				Cell:   b.Cell.A1(),
				Text:   b.Text,
				Reason: b.Reason,
				Cells:  sr.Regions[b.Region].Rows(),
			})
		}
		rep.Sheets = append(rep.Sheets, out)
		rep.Certified = rep.Certified && cert.OK
	}
	return rep
}

func (rep *interfereReport) writeText(w io.Writer, maxList int) error {
	verdict := "certified for staged parallel recalculation"
	if !rep.Certified {
		verdict = "NOT certified (engine falls back to per-cell leveling)"
	}
	if _, err := fmt.Fprintf(w, "workbook: %d sheet(s), %s\n", len(rep.Sheets), verdict); err != nil {
		return err
	}
	for _, sr := range rep.Sheets {
		if err := sr.writeText(w, maxList); err != nil {
			return err
		}
	}
	return nil
}

func (sr *sheetInterfereReport) writeText(w io.Writer, maxList int) error {
	_, err := fmt.Fprintf(w, "\nsheet %q: %d formula(s), %d region(s), %d cross edge(s)\n",
		sr.Sheet, sr.Formulas, sr.Regions, sr.Edges)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  certificate: %d stage(s), widest %d, %d blocker(s)\n",
		sr.Stages, sr.Widest, len(sr.Blockers)); err != nil {
		return err
	}
	for _, st := range sr.StageList {
		shown := st.Regions
		if maxList >= 0 && len(shown) > maxList {
			shown = shown[:maxList]
		}
		if _, err := fmt.Fprintf(w, "  stage %d (%d region(s), %d cell(s)):", st.Stage, len(st.Regions), st.Cells); err != nil {
			return err
		}
		for _, r := range shown {
			if _, err := fmt.Fprintf(w, " %s", r); err != nil {
				return err
			}
		}
		if dropped := len(st.Regions) - len(shown); dropped > 0 {
			if _, err := fmt.Fprintf(w, " ... %d more", dropped); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if len(sr.Blockers) > 0 {
		if _, err := fmt.Fprintln(w, "  blockers:"); err != nil {
			return err
		}
		for _, b := range sr.Blockers {
			text := b.Text
			if len(text) > 40 {
				text = text[:37] + "..."
			}
			if _, err := fmt.Fprintf(w, "    %-6s %-40s %s\n", b.Cell, text, b.Reason); err != nil {
				return err
			}
		}
	}
	return nil
}
