package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func writeBench(t *testing.T, dir, name string, rs []obs.BenchResult) string {
	t.Helper()
	data, err := json.MarshalIndent(obs.BenchFile{Schema: obs.BenchSchema, Benchmarks: rs}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func result(name string, ns, allocs float64) obs.BenchResult {
	return obs.BenchResult{Name: name, Iterations: 10, NsPerOp: ns,
		AllocsPerOp: allocs, Samples: 3}
}

func TestBenchdiffIdenticalExitsZero(t *testing.T) {
	dir := t.TempDir()
	rs := []obs.BenchResult{
		result("BenchmarkRecalc/weather", 125000, 42),
		result("BenchmarkLookup/ledger", 9000, 7),
	}
	base := writeBench(t, dir, "base.json", rs)
	cand := writeBench(t, dir, "cand.json", rs)
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-candidate", cand}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d on identical files, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("table missing PASS:\n%s", out.String())
	}
}

func TestBenchdiffRegressionExitsOne(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", []obs.BenchResult{result("BenchmarkRecalc/weather", 100000, 42)})
	cand := writeBench(t, dir, "cand.json", []obs.BenchResult{result("BenchmarkRecalc/weather", 125000, 42)})
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", base, "-candidate", cand}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on 25%% regression, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "BenchmarkRecalc/weather") {
		t.Fatalf("table should name the regressed benchmark:\n%s", out.String())
	}
}

func TestBenchdiffDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", []obs.BenchResult{
		result("BenchmarkA", 1000, 5), result("BenchmarkB", 1000, 5),
	})
	cand := writeBench(t, dir, "cand.json", []obs.BenchResult{
		result("BenchmarkB", 1400, 5), result("BenchmarkA", 1300, 6),
	})
	var one, two bytes.Buffer
	run([]string{"-baseline", base, "-candidate", cand}, &one, io.Discard)
	run([]string{"-baseline", base, "-candidate", cand}, &two, io.Discard)
	if one.String() != two.String() {
		t.Fatalf("output not deterministic:\n%s\nvs\n%s", one.String(), two.String())
	}
}

func TestBenchdiffMissingFileExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", "/nonexistent/base.json", "-candidate", "/nonexistent/cand.json"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d on missing baseline, want 2", code)
	}
}

func TestBenchdiffRejectsV1Schema(t *testing.T) {
	dir := t.TempDir()
	v1 := `{"schema":"spreadbench-bench/v1","benchmarks":[]}`
	path := filepath.Join(dir, "old.json")
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", path, "-candidate", path}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d on v1 schema, want 2", code)
	}
	if !strings.Contains(errb.String(), "no longer supported") {
		t.Fatalf("stderr should explain the schema rejection: %s", errb.String())
	}
}
