package cell

import (
	"testing"
	"testing/quick"
)

func TestColName(t *testing.T) {
	cases := []struct {
		col  int
		name string
	}{
		{0, "A"}, {1, "B"}, {25, "Z"}, {26, "AA"}, {27, "AB"},
		{51, "AZ"}, {52, "BA"}, {701, "ZZ"}, {702, "AAA"},
		{16383, "XFD"}, // Excel's documented last column
	}
	for _, c := range cases {
		if got := ColName(c.col); got != c.name {
			t.Errorf("ColName(%d) = %q, want %q", c.col, got, c.name)
		}
		back, err := ParseColName(c.name)
		if err != nil {
			t.Fatalf("ParseColName(%q): %v", c.name, err)
		}
		if back != c.col {
			t.Errorf("ParseColName(%q) = %d, want %d", c.name, back, c.col)
		}
	}
}

func TestColNameRoundTripProperty(t *testing.T) {
	f := func(col uint16) bool {
		c := int(col)
		back, err := ParseColName(ColName(c))
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseColNameLowercase(t *testing.T) {
	got, err := ParseColName("ab")
	if err != nil || got != 27 {
		t.Errorf("ParseColName(ab) = %d, %v; want 27", got, err)
	}
}

func TestParseColNameErrors(t *testing.T) {
	for _, bad := range []string{"", "A1", "1A", "$", "A B"} {
		if _, err := ParseColName(bad); err == nil {
			t.Errorf("ParseColName(%q): expected error", bad)
		}
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
	}{
		{"A1", Addr{0, 0}},
		{"B12", Addr{11, 1}},
		{"$C$3", Addr{2, 2}},
		{"AA100", Addr{99, 26}},
		{"zz1", Addr{0, 701}},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, bad := range []string{"", "1", "A", "A0", "A-1", "A1B", "1A", "A1.5"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q): expected error", bad)
		}
	}
}

func TestAddrA1RoundTripProperty(t *testing.T) {
	f := func(row uint16, col uint16) bool {
		a := Addr{Row: int(row), Col: int(col)}
		back, err := ParseAddr(a.A1())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefAbsoluteMarkers(t *testing.T) {
	cases := []struct {
		in             string
		absRow, absCol bool
	}{
		{"A1", false, false},
		{"$A1", false, true},
		{"A$1", true, false},
		{"$A$1", true, true},
	}
	for _, c := range cases {
		r, err := ParseRef(c.in)
		if err != nil {
			t.Fatalf("ParseRef(%q): %v", c.in, err)
		}
		if r.AbsRow != c.absRow || r.AbsCol != c.absCol {
			t.Errorf("ParseRef(%q) abs = (%v,%v), want (%v,%v)",
				c.in, r.AbsRow, r.AbsCol, c.absRow, c.absCol)
		}
		if r.String() != c.in {
			t.Errorf("ParseRef(%q).String() = %q", c.in, r.String())
		}
	}
}

func TestAddrOffset(t *testing.T) {
	a := Addr{Row: 5, Col: 3}
	if got := a.Offset(2, -1); got != (Addr{Row: 7, Col: 2}) {
		t.Errorf("Offset = %v", got)
	}
	if !a.Valid() {
		t.Error("expected valid")
	}
	if (Addr{Row: -1}).Valid() {
		t.Error("negative row should be invalid")
	}
}
