package cell

// Color is a 24-bit RGB cell color. The zero value means "no fill".
type Color uint32

// Colors used by the benchmark's conditional-formatting experiment (§4.2.2:
// "we color a cell green if it contains the value 1").
const (
	NoColor Color = 0
	Green   Color = 0x00_2E_7D32
	Red     Color = 0x00_C6_2828
	Yellow  Color = 0x00_F9_A825
)

// Style holds the presentational attributes of a cell. The paper's update
// taxonomy (Table 1) distinguishes operations that "change the content or
// style (or both) of spreadsheet cells"; conditional formatting changes only
// the style, which is why a style write is metered separately from a value
// write in the cost model.
type Style struct {
	Fill   Color
	Bold   bool
	Italic bool
}

// IsZero reports whether the style is the default (unstyled) style.
func (s Style) IsZero() bool { return s == Style{} }
