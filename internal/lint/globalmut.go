// The globalmut analyzer: direct writes to package-level mutable state
// outside init functions. The engine's recalculation paths are headed for
// region-sharded parallel execution (certified by internal/interfere), and
// any package-level variable written from those paths is a data race
// waiting for the first concurrent stage. Sanctioned shared state goes
// through sync/atomic values or mutex-guarded structs — both of which
// mutate via method calls, which this check deliberately does not flag.
// Audited exceptions are named in globalMutAllow.
//
// Resolution is syntactic, like the rest of the framework: a write is
// flagged only when its base identifier names a package-level var and no
// binding of the same name occurs anywhere in the enclosing function, so
// shadowing errs toward silence.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// GlobalMut is the package-level-mutation analyzer. Its default gate covers
// the packages the parallel recalculation work executes through.
var GlobalMut = &Analyzer{
	Name:        "globalmut",
	Doc:         "direct writes to package-level vars outside init",
	DefaultDirs: []string{"internal/engine", "internal/regions", "internal/obs", "internal/interfere"},
	Run:         runGlobalMut,
}

// globalMutAllow names package-level vars that are reviewed as safe to
// write directly (e.g. set once before any concurrency starts).
var globalMutAllow = map[string]bool{}

func runGlobalMut(pkg *Package) []Diagnostic {
	pkgVars := collectPackageVars(pkg.Files)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "init" {
				continue
			}
			local := collectLocalBindings(fd)
			flag := func(e ast.Expr, pos token.Pos, how string) {
				name, ok := baseIdent(e)
				if !ok || !pkgVars[name] || local[name] || globalMutAllow[name] {
					return
				}
				diags = append(diags, Diagnostic{
					Pos: pkg.Fset.Position(pos).String(),
					Message: fmt.Sprintf(
						"%s of package-level var %q outside init; use sync/atomic or a guarded struct, or allowlist after review", how, name),
				})
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch t := n.(type) {
				case *ast.AssignStmt:
					if t.Tok == token.DEFINE {
						return true
					}
					how := "write"
					if t.Tok != token.ASSIGN {
						how = "compound write"
					}
					for _, lhs := range t.Lhs {
						flag(lhs, t.TokPos, how)
					}
				case *ast.IncDecStmt:
					flag(t.X, t.TokPos, "increment")
				}
				return true
			})
		}
	}
	return sortDiags(diags)
}

// collectPackageVars gathers the names declared by top-level var blocks.
func collectPackageVars(files []*ast.File) map[string]bool {
	vars := make(map[string]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					vars[name.Name] = true
				}
			}
		}
	}
	return vars
}

// collectLocalBindings gathers every name a function binds anywhere —
// receiver, parameters, results, :=, var declarations, range and type-
// switch bindings, and function-literal parameters. Block scope is ignored:
// a name bound anywhere in the function shadows for the whole function,
// which errs toward silence.
func collectLocalBindings(fd *ast.FuncDecl) map[string]bool {
	local := make(map[string]bool)
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				local[name.Name] = true
			}
		}
	}
	addFieldList(fd.Recv)
	addFieldList(fd.Type.Params)
	addFieldList(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if t.Tok == token.DEFINE {
				for _, lhs := range t.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range t.Names {
				local[name.Name] = true
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{t.Key, t.Value} {
				if id, ok := e.(*ast.Ident); ok {
					local[id.Name] = true
				}
			}
		case *ast.TypeSwitchStmt:
			if as, ok := t.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					local[id.Name] = true
				}
			}
		case *ast.FuncLit:
			addFieldList(t.Type.Params)
			addFieldList(t.Type.Results)
		}
		return true
	})
	return local
}

// baseIdent unwraps an assignable expression to its base identifier:
// x, x.f, x[i], (x).f chains all resolve to x. Anything else — including
// pointer dereferences, whose pointee this check cannot place — reports
// not-ok and stays silent.
func baseIdent(e ast.Expr) (string, bool) {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t.Name, true
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return "", false
		}
	}
}
