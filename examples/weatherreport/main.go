// Weatherreport: an analyst workflow over the paper's weather dataset
// (§3.2) — filter to one state, pivot storms per state, and run the
// conditional aggregates of §4.3.3 — across the three benchmarked system
// profiles, printing where each operation lands against the 500 ms
// interactivity bound.
//
// Run: go run ./examples/weatherreport [rows]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	spreadbench "repro"
	"repro/internal/cell"
	"repro/internal/workload"
)

func main() {
	rows := 20_000
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil && n > 0 {
			rows = n
		}
	}
	fmt.Printf("weather analysis over %d rows (Formula-value dataset)\n\n", rows)
	fmt.Printf("%-10s %-22s %12s %10s  %s\n", "system", "operation", "simulated", "wall", "interactive?")

	for _, system := range []string{"excel", "calc", "sheets"} {
		sys, err := spreadbench.NewSystem(system)
		if err != nil {
			log.Fatal(err)
		}
		wb := spreadbench.WeatherWorkbook(rows, true)
		if err := sys.Install(wb); err != nil {
			log.Fatal(err)
		}
		s := wb.First()

		// 1. Filter to South Dakota (§4.3.1's literal).
		kept, fr, err := sys.Filter(s, workload.ColState, spreadbench.Str("SD"), 1)
		if err != nil {
			log.Fatal(err)
		}
		row(system, fmt.Sprintf("filter state=SD (%d)", kept), fr)

		// 2. Pivot: storms per state (§4.3.2) — over the filtered rows.
		pivot, pr, err := sys.PivotTable(s, workload.ColState, workload.ColStorm, 1)
		if err != nil {
			log.Fatal(err)
		}
		row(system, fmt.Sprintf("pivot (%d groups)", pivot.Rows()-1), pr)
		sys.ClearFilter(s)

		// 3. Conditional aggregate: how many storm days (§4.3.3)?
		text := fmt.Sprintf("=COUNTIF(J2:J%d,1)", rows+1)
		storms, ar, err := sys.InsertFormula(s, spreadbench.Cell("R2"), text)
		if err != nil {
			log.Fatal(err)
		}
		row(system, fmt.Sprintf("COUNTIF storms=%s", storms.AsString()), ar)

		// 4. Conditional formatting: highlight storm rows (§4.2.2).
		rng := cell.ColRange(workload.ColFormula0, 1, rows)
		n, cr, err := sys.ConditionalFormat(s, rng, spreadbench.Num(1), cell.Style{Fill: cell.Green})
		if err != nil {
			log.Fatal(err)
		}
		row(system, fmt.Sprintf("condformat (%d cells)", n), cr)
		fmt.Println()
	}
}

func row(system, op string, r spreadbench.Result) {
	mark := "yes"
	if r.Sim > spreadbench.InteractivityBound {
		mark = "NO"
	}
	fmt.Printf("%-10s %-22s %12s %10s  %s\n", system, op,
		spreadbench.FormatDuration(r.Sim), spreadbench.FormatDuration(r.Wall), mark)
}
