// Package latticebad holds the shapes latticecheck must flag: domain
// dispatch with no default clause.
package latticebad

type node interface{ isNode() }

type numLit float64

func (numLit) isNode() {}

type refNode struct{ Row, Col int }

func (refNode) isNode() {}

type binary struct {
	Op   int
	L, R node
}

func (binary) isNode() {}

type value struct {
	Kind int
	Num  float64
}

type call struct {
	Name string
	Args []node
}

func (call) isNode() {}

// typeSwitchNoDefault: an AST dispatch that silently drops unknown nodes.
func typeSwitchNoDefault(n node) int {
	switch n.(type) { // want: type switch without default
	case numLit:
		return 1
	case refNode:
		return 2
	}
	return 0
}

// opSwitchNoDefault: operator dispatch that bottoms out on new operators.
func opSwitchNoDefault(b binary) int {
	switch b.Op { // want: .Op switch without default
	case 0:
		return 1
	case 1:
		return 2
	}
	return 0
}

// kindSwitchNoDefault: value-kind dispatch without the conservative arm.
func kindSwitchNoDefault(v value) bool {
	switch v.Kind { // want: .Kind switch without default
	case 0:
		return true
	}
	return false
}

// nameSwitchNoDefault: builtin dispatch that ignores unmodeled functions.
func nameSwitchNoDefault(c call) int {
	switch c.Name { // want: .Name switch without default
	case "SUM":
		return 1
	case "COUNT":
		return 2
	}
	return 0
}
