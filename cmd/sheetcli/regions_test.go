package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegions runs `sheetcli regions` with the given flags and compares
// the output against (or, with -update, rewrites) the named golden file.
func goldenRegions(t *testing.T, name string, args []string) []byte {
	t.Helper()
	var out, errOut bytes.Buffer
	if code := runRegions(args, &out, &errOut); code != 0 {
		t.Fatalf("runRegions(%v) = %d, stderr: %s", args, code, errOut.String())
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test ./cmd/sheetcli -run Golden -update` to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
	return out.Bytes()
}

func TestRegionsGoldenText(t *testing.T) {
	out := string(goldenRegions(t, "regions_200.txt", fixtureArgs))
	// The seven COUNTIF fill columns compress to one region each; the
	// analysis block's cycle makes the sheet unsequencable, which the
	// report must say out loud.
	for _, want := range []string{
		"K2:K201",
		"200 cell(s)",
		"NOT sequencable",
		"outliers:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q", want)
		}
	}
}

func TestRegionsGoldenJSON(t *testing.T) {
	out := goldenRegions(t, "regions_200.json", append([]string{"-json"}, fixtureArgs...))
	var rep struct {
		Sheets []struct {
			Formulas         int     `json:"formulas"`
			Regions          int     `json:"regions"`
			Classes          int     `json:"classes"`
			CompressionRatio float64 `json:"compression_ratio"`
			Sequencable      bool    `json:"sequencable"`
			Outliers         []struct {
				Range string `json:"range"`
				Text  string `json:"text"`
			} `json:"outliers"`
		} `json:"sheets"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(rep.Sheets) != 1 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	sr := rep.Sheets[0]
	if sr.Formulas != 1409 || sr.Regions == 0 || sr.Classes == 0 {
		t.Errorf("sheet summary: %+v", sr)
	}
	if sr.CompressionRatio < 50 {
		t.Errorf("compression ratio = %v, want the fill columns to dominate", sr.CompressionRatio)
	}
	if sr.Sequencable {
		t.Error("analysis fixture holds a cycle; sheet must not be sequencable")
	}
	if len(sr.Outliers) == 0 {
		t.Error("analysis block rows should report as outliers")
	}
	for _, o := range sr.Outliers {
		if o.Text == "" {
			t.Errorf("outlier %s has no R1C1 text", o.Range)
		}
	}
}

// TestRegionsSequencableSheet: without the analysis block the weather
// formula sheet orders cleanly over seven regions.
func TestRegionsSequencableSheet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wb.svf")
	writeFormulaOnlySvf(t, path)
	var out, errOut bytes.Buffer
	if code := runRegions([]string{"-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("runRegions = %d, stderr: %s", code, errOut.String())
	}
	var rep struct {
		Sheets []struct {
			Regions     int  `json:"regions"`
			Sequencable bool `json:"sequencable"`
		} `json:"sheets"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Sheets) != 1 || rep.Sheets[0].Regions != 7 || !rep.Sheets[0].Sequencable {
		t.Errorf("formula-only sheet: %+v, want 7 sequencable regions", rep.Sheets)
	}
}

func TestRegionsBadFile(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runRegions([]string{filepath.Join(t.TempDir(), "missing.svf")}, &out, &errOut); code != 1 {
		t.Errorf("exit = %d, want 1 for a missing file", code)
	}
	if errOut.Len() == 0 {
		t.Error("missing-file failure should print to stderr")
	}
}
