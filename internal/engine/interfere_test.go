package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/sheet"
	"repro/internal/workload"
)

// corrupt invalidates every cached formula value so a recalculation must
// actually recompute everything.
func corrupt(s *sheet.Sheet) {
	s.EachFormula(func(a cell.Addr, _ sheet.Formula) bool {
		s.SetCachedValue(a, cell.Num(-1234567))
		return true
	})
}

// TestStagedDifferential is the acceptance gate for the certificate-checked
// scheduler: across the weather size matrix, the staged recalculation —
// which executes certified stage-by-stage with the runtime cross-stage
// assertion armed — must reproduce the naive engine's values byte for byte.
func TestStagedDifferential(t *testing.T) {
	for _, rows := range workload.SizesUpTo(25000) {
		t.Run(fmt.Sprintf("rows=%d", rows), func(t *testing.T) {
			naive := New(Profiles()["excel"])
			opt := New(Profiles()["optimized"])
			naive.SetNow(typedColsClock)
			opt.SetNow(typedColsClock)
			wbN := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true})
			wbO := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true,
				Columnar: Profiles()["optimized"].Opt.ColumnarLayout})
			if err := naive.Install(wbN); err != nil {
				t.Fatal(err)
			}
			if err := opt.Install(wbO); err != nil {
				t.Fatal(err)
			}
			sO := wbO.First()
			cert := opt.ParallelCert(sO)
			if !cert.OK {
				t.Fatalf("weather sheet not certified: %+v", cert.Blockers)
			}
			if cert.StageCount() != 1 || cert.Widest() != 7 {
				t.Errorf("cert = %d stages, widest %d; want 1 stage of 7 independent columns",
					cert.StageCount(), cert.Widest())
			}
			corrupt(sO)
			if _, err := opt.RecalculateStaged(sO); err != nil {
				t.Fatal(err)
			}
			regionsCompare(t, "staged full recalc", wbN.First(), sO)
		})
	}
}

// TestStagedDifferentialEdits drives the region-breaking edits through a
// naive and a staged engine; after each edit the certificate is re-derived
// (version-keyed, like the region chain) and a staged recalculation with
// the runtime assertion must stay byte-identical to the naive engine.
func TestStagedDifferentialEdits(t *testing.T) {
	const rows = 300
	naive := New(Profiles()["excel"])
	opt := New(Profiles()["optimized"])
	naive.SetNow(typedColsClock)
	opt.SetNow(typedColsClock)
	wbN := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true})
	wbO := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true,
		Columnar: Profiles()["optimized"].Opt.ColumnarLayout})
	if err := naive.Install(wbN); err != nil {
		t.Fatal(err)
	}
	if err := opt.Install(wbO); err != nil {
		t.Fatal(err)
	}
	sN, sO := wbN.First(), wbO.First()

	both := func(label string, f func(e *Engine, s *sheet.Sheet) error) {
		t.Helper()
		if err := f(naive, sN); err != nil {
			t.Fatalf("%s (naive): %v", label, err)
		}
		if err := f(opt, sO); err != nil {
			t.Fatalf("%s (staged): %v", label, err)
		}
		cert := opt.ParallelCert(sO)
		if !cert.OK {
			t.Fatalf("%s: sheet no longer certified: %+v", label, cert.Blockers)
		}
		corrupt(sO)
		if _, err := opt.RecalculateStaged(sO); err != nil {
			t.Fatalf("%s: staged recalc: %v", label, err)
		}
		regionsCompare(t, label, sN, sO)
	}

	both("formula overwrite in fill region", func(e *Engine, s *sheet.Sheet) error {
		_, _, err := e.InsertFormula(s, cell.Addr{Row: 50, Col: workload.ColFormula0},
			fmt.Sprintf("=COUNTIF(J2:J%d,1)", rows+1))
		return err
	})
	both("value overwrite splits region", func(e *Engine, s *sheet.Sheet) error {
		_, err := e.SetCell(s, cell.Addr{Row: 20, Col: workload.ColFormula0 + 3}, cell.Num(0))
		return err
	})
	both("fresh aggregate formula", func(e *Engine, s *sheet.Sheet) error {
		_, _, err := e.InsertFormula(s, cell.Addr{Row: 0, Col: workload.NumCols + 1},
			fmt.Sprintf("=SUM(K2:K%d)", rows+1))
		return err
	})
	// The aggregate reads the K region: the certificate must now carry a
	// second stage.
	if cert := opt.ParallelCert(sO); cert.StageCount() < 2 {
		t.Errorf("cert = %d stages after dependent aggregate, want >= 2", cert.StageCount())
	}
	both("row insert", func(e *Engine, s *sheet.Sheet) error {
		_, err := e.InsertRows(s, 10, 3)
		return err
	})
	both("row delete", func(e *Engine, s *sheet.Sheet) error {
		_, err := e.DeleteRows(s, 10, 3)
		return err
	})
	both("sort by storm", func(e *Engine, s *sheet.Sheet) error {
		_, err := e.Sort(s, workload.ColStorm, false, 1)
		return err
	})
	both("find-replace event", func(e *Engine, s *sheet.Sheet) error {
		_, _, err := e.FindReplace(s, "STORM", "CALM")
		return err
	})
}

// TestStagedStaleScheduleAfterSplit pins the version-key fix: a SplitAt
// (value overwriting one formula cell) must invalidate the issued
// certificate, and the next staged pass must run on a fresh one — never a
// replay of the stale schedule.
func TestStagedStaleScheduleAfterSplit(t *testing.T) {
	eng, s := newTestEngine(t, "optimized", 200, true)
	before := eng.ParallelCert(s)
	if !before.OK {
		t.Fatalf("weather sheet not certified: %+v", before.Blockers)
	}
	if _, err := eng.SetCell(s, cell.Addr{Row: 60, Col: workload.ColFormula0 + 2}, cell.Num(9)); err != nil {
		t.Fatal(err)
	}
	after := eng.ParallelCert(s)
	if after == before || after.Version == before.Version {
		t.Fatalf("certificate not reissued after SplitAt: version %d -> %d", before.Version, after.Version)
	}
	if after.Regions != before.Regions+1 {
		t.Errorf("regions = %d after split, want %d", after.Regions, before.Regions+1)
	}
	corrupt(s)
	if _, err := eng.RecalculateStaged(s); err != nil {
		t.Fatal(err)
	}
	// The overwritten cell keeps its value; its old region's other cells
	// recompute correctly around it.
	if got := s.Value(cell.Addr{Row: 60, Col: workload.ColFormula0 + 2}).Num; got != 9 {
		t.Errorf("overwritten cell = %v, want 9", got)
	}
	if got := s.Value(cell.Addr{Row: 61, Col: workload.ColFormula0 + 2}).Num; got == -1234567 {
		t.Error("neighbor cell not recomputed by staged pass")
	}
}

// TestStagedRefusesUncertified: the shim must refuse a sheet with volatile
// and cyclic summary formulas, while RecalculateParallel falls back to
// per-cell leveling and still matches the serial engine.
func TestStagedRefusesUncertified(t *testing.T) {
	naive := New(Profiles()["excel"])
	par := New(Profiles()["excel"])
	naive.SetNow(typedColsClock)
	par.SetNow(typedColsClock)
	wbN := workload.Weather(workload.Spec{Rows: 120, Seed: 7, Formulas: true, Analysis: true})
	wbP := workload.Weather(workload.Spec{Rows: 120, Seed: 7, Formulas: true, Analysis: true})
	if err := naive.Install(wbN); err != nil {
		t.Fatal(err)
	}
	if err := par.Install(wbP); err != nil {
		t.Fatal(err)
	}
	sP := wbP.First()
	if _, err := par.RecalculateStaged(sP); err == nil {
		t.Fatal("RecalculateStaged accepted an uncertifiable sheet")
	}
	corrupt(sP)
	if _, err := par.RecalculateParallel(sP, 4); err != nil {
		t.Fatal(err)
	}
	regionsCompare(t, "fallback parallel recalc", wbN.First(), sP)
}

// TestParallelCertFuzz is the soundness-under-mutation property: random
// single-cell edits (value writes, formula overwrites, fill-region splits)
// must never leave a certificate whose stages disagree with the per-cell
// graph's transitive dependents — every dependent lives in the same region
// or a strictly later stage. Every few rounds the staged scheduler replays
// a full recalculation against a naive twin to pin values too.
func TestParallelCertFuzz(t *testing.T) {
	const rows = 120
	rng := rand.New(rand.NewSource(41))
	naive := New(Profiles()["excel"])
	opt := New(Profiles()["optimized"])
	naive.SetNow(typedColsClock)
	opt.SetNow(typedColsClock)
	wbN := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true})
	wbO := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true,
		Columnar: Profiles()["optimized"].Opt.ColumnarLayout})
	if err := naive.Install(wbN); err != nil {
		t.Fatal(err)
	}
	if err := opt.Install(wbO); err != nil {
		t.Fatal(err)
	}
	sN, sO := wbN.First(), wbO.First()

	edit := func(e *Engine, s *sheet.Sheet, round int) error {
		switch rng.Intn(3) {
		case 0: // data edit into a precedent column
			at := cell.Addr{Row: 1 + rng.Intn(rows), Col: workload.ColEvent0 + rng.Intn(7)}
			_, err := e.SetCell(s, at, cell.Str("STORM"))
			return err
		case 1: // value overwrite of a formula cell: SplitAt path
			at := cell.Addr{Row: 1 + rng.Intn(rows), Col: workload.ColFormula0 + rng.Intn(7)}
			_, err := e.SetCell(s, at, cell.Num(float64(round)))
			return err
		default: // deviant formula inside a fill region
			at := cell.Addr{Row: 1 + rng.Intn(rows), Col: workload.ColFormula0 + rng.Intn(7)}
			_, _, err := e.InsertFormula(s, at, fmt.Sprintf("=J%d+%d", 2+rng.Intn(rows), round))
			return err
		}
	}

	for round := 0; round < 60; round++ {
		// Drive both engines with the identical edit (shared rng state must
		// be sampled once).
		snap := rng.Int63()
		rng.Seed(snap)
		if err := edit(naive, sN, round); err != nil {
			t.Fatalf("round %d (naive): %v", round, err)
		}
		rng.Seed(snap)
		if err := edit(opt, sO, round); err != nil {
			t.Fatalf("round %d (staged): %v", round, err)
		}

		ce := opt.parallelCertFor(sO, &opt.meter)
		g := opt.graph(sO)
		if ce.cert.Version != g.Version() {
			t.Fatalf("round %d: certificate version %d, graph version %d", round, ce.cert.Version, g.Version())
		}
		if !ce.cert.OK {
			t.Fatalf("round %d: certificate lost: %+v", round, ce.cert.Blockers)
		}
		// Soundness vs the per-cell graph: sample formula cells and check
		// every transitive dependent is staged no earlier.
		for i := 0; i < 12; i++ {
			from := cell.Addr{Row: 1 + rng.Intn(rows), Col: workload.ColFormula0 + rng.Intn(7)}
			fromRegion := ce.sr.RegionFor(from)
			if fromRegion < 0 {
				continue // overwritten by a value edit
			}
			for _, dep := range g.TransitiveDependents(from) {
				depRegion := ce.sr.RegionFor(dep)
				if depRegion < 0 {
					t.Fatalf("round %d: dependent %s of %s not in any region", round, dep.A1(), from.A1())
				}
				if depRegion == fromRegion {
					continue // intra-region order is the region graph's
				}
				if ce.cert.Stage[fromRegion] >= ce.cert.Stage[depRegion] {
					t.Fatalf("round %d: %s (region %d, stage %d) feeds %s (region %d, stage %d): not strictly staged",
						round, from.A1(), fromRegion, ce.cert.Stage[fromRegion],
						dep.A1(), depRegion, ce.cert.Stage[depRegion])
				}
			}
		}
		if round%10 == 9 {
			corrupt(sO)
			if _, err := opt.RecalculateStaged(sO); err != nil {
				t.Fatalf("round %d: staged recalc: %v", round, err)
			}
			regionsCompare(t, fmt.Sprintf("fuzz round %d", round), sN, sO)
		}
	}
}
