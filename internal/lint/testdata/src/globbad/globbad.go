// Package globbad holds one flagged package-level write per function; the
// globalmut test asserts the count.
package globbad

var counter int

var registry = map[string]int{}

type config struct{ n int }

var state config

// reviewed is written by allowedWrite; the allowlist subtest suppresses it.
var reviewed int

// plainWrite: direct assignment to a package var.
func plainWrite() { counter = 1 }

// compoundWrite: += still mutates the package var.
func compoundWrite() { counter += 2 }

// increment: ++ is a write too.
func increment() { counter++ }

// fieldWrite: mutating a field of a package-level struct var.
func fieldWrite() { state.n = 3 }

// mapWrite: writing an element of a package-level map.
func mapWrite() { registry["k"] = 4 }

// methodWrite: methods are not exempt.
func (c *config) methodWrite() { counter = c.n }

// allowedWrite: flagged by default, suppressed once reviewed is allowlisted.
func allowedWrite() { reviewed = 5 }
