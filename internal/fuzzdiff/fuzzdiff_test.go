package fuzzdiff

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/sheet"
	"repro/internal/tracelang"
	"repro/internal/workload"
)

// TestDifferential is the headline property: for every registered workload
// at two sizes, a seeded random op sequence leaves all four engine profiles
// with byte-identical workbook state after every single operation, and the
// baseline engine's static analyses stay sound throughout.
func TestDifferential(t *testing.T) {
	for _, wl := range workload.Names() {
		for _, rows := range []int{12, 36} {
			wl, rows := wl, rows
			t.Run(wl+"/"+itoa(rows), func(t *testing.T) {
				t.Parallel()
				cfg := Config{Workload: wl, Rows: rows, Seed: 0xF00D + uint64(rows), Checks: true}
				ops := Generate(cfg, 30)
				if len(ops) != 30 {
					t.Fatalf("generated %d ops", len(ops))
				}
				if f := Run(cfg, ops); f != nil {
					t.Fatalf("%v\nrepro script:\n%s", f, f.Script())
				}
			})
		}
	}
}

// TestGenerateDeterministic: same (workload, seed, n) must yield the same
// sequence — the property that makes every failure replayable.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Workload: "ledger", Rows: 20, Seed: 7}
	a := Generate(cfg, 40)
	b := Generate(cfg, 40)
	if tracelang.Format(a) != tracelang.Format(b) {
		t.Fatal("generation is not deterministic")
	}
	cfg.Seed = 8
	if tracelang.Format(a) == tracelang.Format(Generate(cfg, 40)) {
		t.Fatal("different seeds produced identical sequences")
	}
	// Every generated sequence must round-trip through the mini-language.
	stmts, err := tracelang.Parse(tracelang.Format(a))
	if err != nil {
		t.Fatalf("generated script does not re-parse: %v", err)
	}
	if len(stmts) != len(a) {
		t.Fatalf("round-trip lost ops: %d != %d", len(stmts), len(a))
	}
}

// TestMutationCaughtAndMinimized injects a bug into the "optimized" engine
// — after every sort it corrupts one cached formula value — and requires
// the harness to (a) catch the divergence and (b) minimize the failing
// sequence to a short replayable trace script.
func TestMutationCaughtAndMinimized(t *testing.T) {
	cfg := Config{
		Workload: "ledger",
		Rows:     24,
		Seed:     0xBADC0DE,
		Profiles: []string{"excel", "optimized"},
		AfterOp: func(profile string, _ *engine.Engine, s *sheet.Sheet, op tracelang.Op) {
			if profile != "optimized" {
				return
			}
			if _, ok := op.(tracelang.SortOp); !ok {
				return
			}
			s.EachFormula(func(a cell.Addr, _ sheet.Formula) bool {
				s.SetCachedValue(a, cell.Num(-12345))
				return false // corrupt just the first formula cell
			})
		},
	}
	ops := Generate(cfg, 40)
	hasSort := false
	for _, op := range ops {
		if _, ok := op.(tracelang.SortOp); ok {
			hasSort = true
			break
		}
	}
	if !hasSort {
		t.Fatal("generated sequence has no sort; pick another seed")
	}

	f := Run(cfg, ops)
	if f == nil {
		t.Fatal("injected cache corruption was not caught")
	}
	if f.Kind != "state" {
		t.Fatalf("divergence kind = %q, want state (%s)", f.Kind, f.Detail)
	}

	min := MinimizeFailure(cfg, ops)
	if min == nil {
		t.Fatal("minimization lost the failure")
	}
	if len(min.Ops) > 10 {
		t.Fatalf("minimized repro has %d ops, want <= 10:\n%s", len(min.Ops), min.Script())
	}
	// The minimal repro must still be a valid, replayable trace script.
	stmts, err := tracelang.Parse(min.Script())
	if err != nil {
		t.Fatalf("minimized script does not parse: %v", err)
	}
	if len(stmts) != len(min.Ops) {
		t.Fatalf("minimized script parses to %d stmts, want %d", len(stmts), len(min.Ops))
	}
	t.Logf("minimized to %d ops: %s", len(min.Ops), min.Script())
}

// TestMinimizeIsOneMinimal checks the shrinker contract on a synthetic
// predicate: the result must fail, and removing any single op must not.
func TestMinimizeIsOneMinimal(t *testing.T) {
	cfg := Config{Workload: "weather", Rows: 10, Seed: 3}
	ops := Generate(cfg, 25)
	// Synthetic failure: "fails" iff the sequence still holds both a sort
	// and a row insert, anywhere.
	fails := func(c []tracelang.Op) bool {
		var sort, ins bool
		for _, op := range c {
			switch op.(type) {
			case tracelang.SortOp:
				sort = true
			case tracelang.RowInsOp:
				ins = true
			}
		}
		return sort && ins
	}
	if !fails(ops) {
		t.Skip("seed produced no sort+rowins pair")
	}
	min := Minimize(ops, fails)
	if !fails(min) {
		t.Fatal("minimized sequence no longer fails")
	}
	if len(min) != 2 {
		t.Fatalf("want exactly {sort, rowins}, got %d ops: %s", len(min), tracelang.Format(min))
	}
	for i := range min {
		cand := append(append([]tracelang.Op(nil), min[:i]...), min[i+1:]...)
		if fails(cand) {
			t.Fatalf("not 1-minimal: op %d removable", i)
		}
	}
}

// TestRunRejectsBadConfig covers the config error paths.
func TestRunRejectsBadConfig(t *testing.T) {
	if f := Run(Config{Workload: "abacus", Rows: 5}, nil); f == nil || f.Kind != "config" {
		t.Fatalf("unknown workload: %+v", f)
	}
	if f := Run(Config{Workload: "weather", Rows: 5, Profiles: []string{"lotus123"}}, nil); f == nil || f.Kind != "config" {
		t.Fatalf("unknown profile: %+v", f)
	}
}

// FuzzDifferential lets `go test -fuzz` drive the harness with arbitrary
// (seed, workload, length) triples. Kept small per execution so the fuzzer
// gets throughput; the nightly CI job gives it a real time budget.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(12))
	f.Add(uint64(0xF00D), uint8(1), uint8(20))
	f.Add(uint64(42), uint8(2), uint8(16))
	f.Add(uint64(7), uint8(3), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint64, wlIdx, nOps uint8) {
		names := workload.Names()
		cfg := Config{
			Workload: names[int(wlIdx)%len(names)],
			Rows:     8 + int(seed%13),
			Seed:     seed,
			Checks:   true,
		}
		ops := Generate(cfg, 4+int(nOps%24))
		if fail := Run(cfg, ops); fail != nil {
			min := MinimizeFailure(cfg, ops)
			if min != nil {
				fail = min
			}
			t.Fatalf("%v\nrepro script:\n%s", fail, fail.Script())
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
