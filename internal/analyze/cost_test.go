package analyze

import (
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/graph"
	"repro/internal/sheet"
	"repro/internal/workload"
)

// TestEstimateWithinTwoOfMeasured is the acceptance test for the static
// cost model: across workload sizes, the estimated sequencing cost of a
// full recalculation must land within a factor of two of what the graph
// actually charges for AllFormulas on the same formula set.
func TestEstimateWithinTwoOfMeasured(t *testing.T) {
	for _, rows := range []int{200, 2000, 5000} {
		spec := workload.Spec{Rows: rows, Formulas: true, Seed: 7, Analysis: true}
		s := workload.Weather(spec).First()

		sites := collectSites(s)
		est := EstimateRecalcOps(sites)

		g := graph.New()
		for _, f := range sites {
			g.SetFormula(f.at, f.code.PrecedentRanges(f.dr, f.dc))
		}
		g.ResetOps() // charge only the sequencing pass
		g.AllFormulas()
		measured := g.Ops()

		if measured == 0 {
			t.Fatalf("rows=%d: measured 0 ops", rows)
		}
		ratio := float64(est) / float64(measured)
		t.Logf("rows=%d est=%d measured=%d ratio=%.3f", rows, est, measured, ratio)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("rows=%d: estimate %d vs measured %d (ratio %.3f) outside [0.5, 2.0]",
				rows, est, measured, ratio)
		}
	}
}

func TestEstimateEmptySheet(t *testing.T) {
	if got := EstimateRecalcOps(nil); got != 0 {
		t.Errorf("EstimateRecalcOps(nil) = %d, want 0", got)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int64]int64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestSheetReportEstimateMatchesWorkload ties the report field to the model
// on the standard analysis fixture.
func TestSheetReportEstimateMatchesWorkload(t *testing.T) {
	s := workload.Weather(workload.Spec{Rows: 500, Formulas: true, Seed: 7, Analysis: true}).First()
	sr := SheetReportFor(s, Options{})
	if sr.EstRecalcOps != EstimateRecalcOps(collectSites(s)) {
		t.Error("SheetReport estimate should equal EstimateRecalcOps over the same sites")
	}
	if sr.EstEvalCells == 0 {
		t.Error("EstEvalCells should be nonzero for a formula workload")
	}
}

// TestStatsMatchesEstimatorClassification pins the small/large range split
// shared by the built graph (graph.Stats) and the static estimator: a range
// of exactly graph.SmallRangeMax cells expands to per-cell edges, one cell
// more moves it to the interval list — and the estimator charges the extra
// interval-scan op for exactly the ranges the graph classifies large.
func TestStatsMatchesEstimatorClassification(t *testing.T) {
	build := func(rangeRows int) (graph.Stats, int64) {
		s := sheet.New("S", rangeRows+4, 4)
		text := fmt.Sprintf("=SUM(A1:A%d)", rangeRows)
		s.SetFormula(cell.Addr{Row: 0, Col: 2}, formula.MustCompile(text))
		sites := collectSites(s)
		g := graph.New()
		for _, f := range sites {
			g.SetFormula(f.at, f.code.PrecedentRanges(f.dr, f.dc))
		}
		return g.Stats(), EstimateRecalcOps(sites)
	}

	small, estSmall := build(graph.SmallRangeMax)
	if small.Formulas != 1 || small.CellEdges != graph.SmallRangeMax || small.LargeRanges != 0 {
		t.Fatalf("at the boundary: %+v, want %d cell edges and no large ranges",
			small, graph.SmallRangeMax)
	}
	large, estLarge := build(graph.SmallRangeMax + 1)
	if large.Formulas != 1 || large.CellEdges != 0 || large.LargeRanges != 1 {
		t.Fatalf("past the boundary: %+v, want one large range and no cell edges", large)
	}
	// Same formula count either side, so the estimates differ by exactly
	// the interval-scan op the estimator charges per large range.
	if estLarge != estSmall+1 {
		t.Errorf("estimate small=%d large=%d, want the large estimate one op higher",
			estSmall, estLarge)
	}
}
