// Command sheetcli is an interactive REPL over the spreadsheet engine: it
// lets you poke any system profile by hand and see each operation's
// simulated and wall cost — useful for sanity-checking the benchmark's
// calibrated behaviors.
//
// Usage: sheetcli [-system excel|calc|sheets|optimized] [file.svf]
//
//	sheetcli analyze [-json] [-rows n] [file.svf]
//
// runs the static analyzer (internal/analyze) over a workbook and exits;
// see analyze.go.
//
//	sheetcli typecheck [-json] [-rows n] [file.svf]
//
// runs the static type & error-flow inference (internal/typecheck) over a
// workbook and exits; see typecheck.go.
//
//	sheetcli regions [-json] [-rows n] [file.svf]
//
// runs the fill-region inference (internal/regions) over a workbook and
// reports formula-set compression and region-graph sequencability; see
// regions.go.
//
//	sheetcli interfere [-json] [-rows n] [file.svf]
//
// runs the parallel-safety certification (internal/interfere) over a
// workbook and reports certified stages and blockers; see interfere.go.
//
//	sheetcli absint [-json] [-rows n] [file.svf]
//
// runs the abstract-interpretation value analysis (internal/absint) over a
// workbook and reports the per-column interval/sortedness/error-freedom
// certificates and certified constants the optimized engine consumes; see
// absint.go.
//
//	sheetcli plan [-json] [-rows n] [-max n] [file.svf]
//
// runs the cost-based recalculation planner (internal/plan) over a workbook
// and reports per-column statistics, the chosen strategy at every operation
// site with the alternatives it beat, the predicted steady-state recalc
// work, and the plan certificate; see plan.go.
//
//	sheetcli trace [-system p] [-rows n] [-script ops] [-json] [file.svf]
//
// runs a scripted operation sequence with the observability layer on and
// prints the span tree plus 500 ms interactivity SLO verdicts; see trace.go.
//
//	sheetcli drift [-system planned] [-rows n] [-script ops] [-json] [file.svf]
//
// runs a scripted operation sequence under a cost-planned profile and
// reports predicted-versus-measured work at every planner gate — the
// plan-drift monitor's calibration verdict; see drift.go.
//
// Commands (addresses in A1 notation, columns as letters):
//
//	set A1 <value|=FORMULA>   write a cell
//	get A1                    read a cell
//	show [rows]               print the top of the sheet
//	analyze                   run the static analyzer on the workbook
//	typecheck                 run the static type & error-flow inference
//	regions                   run the fill-region inference
//	interfere                 run the parallel-safety certification
//	absint                    run the abstract value analysis
//	plan                      run the cost-based recalc planner
//	sort <col> [asc|desc]     sort by column
//	filter <col> <value>      filter rows; "filter off" clears
//	pivot <dim> <measure>     pivot table into a new sheet
//	find <x> <y>              find-and-replace
//	trace on|off|dump         record spans for later ops; dump the tree
//	gen <rows> [F|V] [w]      load a generated dataset (default weather)
//	open <path>               open an SVF workbook
//	save <path>               save the workbook
//	help, quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analyze"
	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/iolib"
	"repro/internal/obs"
	"repro/internal/sheet"
	"repro/internal/typecheck"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		os.Exit(runAnalyze(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "typecheck" {
		os.Exit(runTypecheck(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "regions" {
		os.Exit(runRegions(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "interfere" {
		os.Exit(runInterfere(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "absint" {
		os.Exit(runAbsint(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "plan" {
		os.Exit(runPlan(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		os.Exit(runTrace(os.Args[2:], os.Stdout, os.Stderr))
	}
	if len(os.Args) > 1 && os.Args[1] == "drift" {
		os.Exit(runDrift(os.Args[2:], os.Stdout, os.Stderr))
	}

	system := flag.String("system", "excel", "system profile")
	flag.Parse()

	prof, ok := engine.Profiles()[*system]
	if !ok {
		fmt.Fprintf(os.Stderr, "sheetcli: unknown system %q\n", *system)
		os.Exit(2)
	}
	eng := engine.New(prof)

	if flag.NArg() > 0 {
		if res, err := eng.Open(flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "sheetcli: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Printf("opened %s (sim %v)\n", flag.Arg(0), res.Sim)
		}
	} else {
		wb := workload.Weather(workload.Spec{Rows: 100, Formulas: true})
		if err := eng.Install(wb); err != nil {
			fmt.Fprintf(os.Stderr, "sheetcli: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("loaded a 100-row weather dataset; try: show, or gen 10000 F")
	}

	in := bufio.NewScanner(os.Stdin)
	fmt.Printf("%s> ", prof.Name)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line != "" && !dispatch(eng, line) {
			return
		}
		fmt.Printf("%s> ", prof.Name)
	}
}

// dispatch runs one command; it returns false to quit.
func dispatch(eng *engine.Engine, line string) bool {
	args := strings.Fields(line)
	cmd := strings.TrimPrefix(strings.ToLower(args[0]), ":")
	s := eng.Workbook().First()
	fail := func(err error) bool {
		fmt.Println("error:", err)
		return true
	}

	switch cmd {
	case "quit", "exit", "q":
		return false

	case "help":
		fmt.Println("set get show analyze typecheck regions interfere absint plan sort filter pivot find trace gen open save quit")

	case "analyze":
		rep := analyze.Workbook(eng.Workbook(), analyze.Options{})
		if err := rep.WriteText(os.Stdout); err != nil {
			return fail(err)
		}

	case "typecheck":
		res := typecheck.Workbook(eng.Workbook(), typecheck.Options{})
		if err := res.WriteText(os.Stdout); err != nil {
			return fail(err)
		}

	case "regions":
		if err := regionsReportFor(eng.Workbook()).writeText(os.Stdout, 20); err != nil {
			return fail(err)
		}

	case "interfere":
		if err := interfereReportFor(eng.Workbook()).writeText(os.Stdout, 20); err != nil {
			return fail(err)
		}

	case "absint":
		if err := absintReportFor(eng.Workbook()).writeText(os.Stdout, 20); err != nil {
			return fail(err)
		}

	case "plan":
		if err := planReportFor(eng.Workbook()).writeText(os.Stdout, 20); err != nil {
			return fail(err)
		}

	case "set":
		if len(args) < 3 {
			fmt.Println("usage: set A1 <value|=FORMULA>")
			return true
		}
		a, err := cell.ParseAddr(args[1])
		if err != nil {
			return fail(err)
		}
		raw := strings.Join(args[2:], " ")
		if strings.HasPrefix(raw, "=") {
			v, res, err := eng.InsertFormula(s, a, raw)
			if err != nil {
				return fail(err)
			}
			fmt.Printf("%s = %s  (sim %v, wall %v)\n", a, v.AsString(), res.Sim, res.Wall)
			return true
		}
		v := cell.Str(raw)
		if f, err := strconv.ParseFloat(raw, 64); err == nil {
			v = cell.Num(f)
		}
		res, err := eng.SetCell(s, a, v)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("ok (sim %v)\n", res.Sim)

	case "get":
		if len(args) != 2 {
			fmt.Println("usage: get A1")
			return true
		}
		a, err := cell.ParseAddr(args[1])
		if err != nil {
			return fail(err)
		}
		v, res := eng.CellValue(s, a)
		fmt.Printf("%s = %s  (sim %v)\n", a, v.AsString(), res.Sim)

	case "show":
		n := 10
		if len(args) > 1 {
			if k, err := strconv.Atoi(args[1]); err == nil {
				n = k
			}
		}
		showSheet(s, n)

	case "sort":
		if len(args) < 2 {
			fmt.Println("usage: sort <col> [asc|desc]")
			return true
		}
		col, err := cell.ParseColName(args[1])
		if err != nil {
			return fail(err)
		}
		asc := len(args) < 3 || strings.ToLower(args[2]) != "desc"
		res, err := eng.Sort(s, col, asc, 1)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("sorted (sim %v, wall %v)\n", res.Sim, res.Wall)

	case "filter":
		if len(args) == 2 && strings.ToLower(args[1]) == "off" {
			eng.ClearFilter(s)
			fmt.Println("filter cleared")
			return true
		}
		if len(args) != 3 {
			fmt.Println("usage: filter <col> <value> | filter off")
			return true
		}
		col, err := cell.ParseColName(args[1])
		if err != nil {
			return fail(err)
		}
		kept, res, err := eng.Filter(s, col, cell.Str(args[2]), 1)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("%d rows visible (sim %v)\n", kept, res.Sim)

	case "pivot":
		if len(args) != 3 {
			fmt.Println("usage: pivot <dimcol> <measurecol>")
			return true
		}
		dim, err := cell.ParseColName(args[1])
		if err != nil {
			return fail(err)
		}
		meas, err := cell.ParseColName(args[2])
		if err != nil {
			return fail(err)
		}
		out, res, err := eng.PivotTable(s, dim, meas, 1)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("pivot -> sheet %q, %d groups (sim %v)\n", out.Name, out.Rows()-1, res.Sim)
		showSheet(out, 10)

	case "find":
		if len(args) != 3 {
			fmt.Println("usage: find <x> <y>")
			return true
		}
		n, res, err := eng.FindReplace(s, args[1], args[2])
		if err != nil {
			return fail(err)
		}
		fmt.Printf("replaced in %d cells (sim %v)\n", n, res.Sim)

	case "trace":
		if len(args) != 2 {
			fmt.Println("usage: trace on|off|dump")
			return true
		}
		switch strings.ToLower(args[1]) {
		case "on":
			obs.Reset()
			obs.SetEnabled(true)
			fmt.Println("tracing on; run some ops, then: trace dump")
		case "off":
			obs.SetEnabled(false)
			fmt.Println("tracing off")
		case "dump":
			tr := obs.Take()
			rep := obs.CheckTrace(tr, obs.DefaultSLOBound)
			if err := writeTraceText(os.Stdout, tr, rep, obs.TreeOptions{Durations: true, MaxSpans: 200}); err != nil {
				return fail(err)
			}
		default:
			fmt.Println("usage: trace on|off|dump")
		}

	case "gen":
		if len(args) < 2 {
			fmt.Println("usage: gen <rows> [F|V] [workload]")
			return true
		}
		rows, err := strconv.Atoi(args[1])
		if err != nil || rows <= 0 {
			fmt.Println("bad row count")
			return true
		}
		formulas := len(args) > 2 && strings.EqualFold(args[2], "F")
		name := "weather"
		if len(args) > 3 {
			name = strings.ToLower(args[3])
		}
		gen, ok := workload.ByName(name)
		if !ok {
			fmt.Printf("unknown workload %q; have %s\n", name, strings.Join(workload.Names(), ", "))
			return true
		}
		wb := gen.Build(workload.Spec{Rows: rows, Formulas: formulas})
		if err := eng.Install(wb); err != nil {
			return fail(err)
		}
		fmt.Printf("loaded %d %s rows (%s)\n", rows, gen.Name,
			map[bool]string{true: "Formula-value", false: "Value-only"}[formulas])

	case "open":
		if len(args) != 2 {
			fmt.Println("usage: open <path>")
			return true
		}
		res, err := eng.Open(args[1])
		if err != nil {
			return fail(err)
		}
		fmt.Printf("opened (sim %v, wall %v)\n", res.Sim, res.Wall)

	case "save":
		if len(args) != 2 {
			fmt.Println("usage: save <path>")
			return true
		}
		if err := iolib.SaveWorkbook(args[1], eng.Workbook()); err != nil {
			return fail(err)
		}
		fmt.Println("saved", args[1])

	default:
		fmt.Printf("unknown command %q; try help\n", cmd)
	}
	return true
}

func showSheet(s *sheet.Sheet, n int) {
	rows := s.Rows()
	if n > rows {
		n = rows
	}
	cols := s.Cols()
	if cols > 12 {
		cols = 12
	}
	for r := 0; r < n; r++ {
		if s.RowHidden(r) {
			continue
		}
		var parts []string
		for c := 0; c < cols; c++ {
			parts = append(parts, fmt.Sprintf("%-8.8s", s.Value(cell.Addr{Row: r, Col: c}).AsString()))
		}
		fmt.Println(strings.Join(parts, " "))
	}
}
