package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/iolib"
	"repro/internal/obs"
	"repro/internal/tracelang"
	"repro/internal/workload"
)

// defaultDriftScript exercises every planner gate the drift monitor
// instruments: a cold full recalculation (recalc-seq plus the lookup,
// countif, and aggregate serve gates behind the workload's formulas), a
// pair of shared aggregates so incremental maintenance materializes them,
// edits inside the aggregated range (delta-maint), and a second
// recalculation over the now-warm indexes.
const defaultDriftScript = "recalc; formula R2 =SUM(J2:J101); formula R3 =SUM(J2:J101); " +
	"set J6 3; set J7 4; set J8 5; recalc"

// runDrift implements the `sheetcli drift` subcommand: it runs a scripted
// operation sequence under a cost-planned profile with the observability
// layer on and reports predicted-versus-measured work at every planner
// gate — the plan-drift monitor's view of whether the cost model is
// calibrated (aggregate ratio inside [obs.DriftCalibratedMin,
// obs.DriftCalibratedMax] per gate). Ratios are computed on the simulated
// clock, so the report is deterministic for a fixed workload and seed.
//
// Usage: sheetcli drift [-system planned] [-workload w] [-rows n] [-seed n]
//
//	[-script ops] [-json] [-strict] [file.svf]
func runDrift(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("drift", flag.ContinueOnError)
	fs.SetOutput(errOut)
	system := fs.String("system", "planned", "system profile; only cost-planned profiles record drift")
	wname := fs.String("workload", "weather", "generated dataset (ignored with a file argument): one of "+workloadNames())
	rows := fs.Int("rows", 1000, "rows of the generated dataset (ignored with a file argument)")
	seed := fs.Uint64("seed", 0, "generator seed; 0 means the default")
	script := fs.String("script", defaultDriftScript, "semicolon-separated operations to run")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	strict := fs.Bool("strict", false, "exit 1 when any gate's aggregate ratio leaves the calibrated band")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: sheetcli drift [-system p] [-workload w] [-rows n] [-seed n] [-script ops] [-json] [-strict] [file.svf]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	prof, ok := engine.Profiles()[*system]
	if !ok {
		fmt.Fprintf(errOut, "sheetcli: unknown system %q\n", *system)
		return 2
	}
	if !prof.Opt.CostPlanner {
		fmt.Fprintf(errOut, "sheetcli: profile %q has no cost planner; drift gates never fire (try -system planned)\n", prof.Name)
		return 2
	}

	eng := engine.New(prof)
	if fs.NArg() > 0 {
		res, err := iolib.LoadWorkbook(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(errOut, "sheetcli: %v\n", err)
			return 1
		}
		if err := eng.Install(res.Workbook); err != nil {
			fmt.Fprintf(errOut, "sheetcli: %v\n", err)
			return 1
		}
	} else {
		gen, ok := workload.ByName(*wname)
		if !ok {
			fmt.Fprintf(errOut, "sheetcli: unknown workload %q (have %s)\n", *wname, workloadNames())
			return 2
		}
		wb := gen.Build(workload.Spec{Rows: *rows, Formulas: true, Seed: *seed})
		if err := eng.Install(wb); err != nil {
			fmt.Fprintf(errOut, "sheetcli: %v\n", err)
			return 1
		}
	}

	// Observe only the scripted operations, not the fixture install.
	obs.Reset()
	obs.DefaultDrift.Reset()
	obs.SetEnabled(true)
	scriptErr := tracelang.Run(eng, *script)
	obs.SetEnabled(false)
	if scriptErr != nil {
		fmt.Fprintf(errOut, "sheetcli: %v\n", scriptErr)
		return 1
	}

	rep := obs.DefaultDrift.Report()
	var err error
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
	} else {
		err = rep.WriteText(out)
	}
	if err != nil {
		fmt.Fprintf(errOut, "sheetcli: %v\n", err)
		return 1
	}
	if *strict && !rep.Calibrated() {
		return 1
	}
	return 0
}
