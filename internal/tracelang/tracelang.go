// Package tracelang is the scripted-operation mini-language shared by the
// sheetcli trace subcommand and the differential fuzzer. A script is a
// semicolon-separated sequence of statements, each a user-facing operation
// on the active sheet:
//
//	sheet <name>              switch the active sheet
//	set A1 <value>            write a literal cell
//	formula A1 =TEXT          insert a formula
//	sort <col> [asc|desc]     sort by column
//	filter <col> <value>      filter rows; "filter off" clears
//	pivot <dim> <measure>     pivot table into a new sheet
//	find <x> <y>              find-and-replace
//	paste <range> <addr>      copy-paste a range (top-left anchor)
//	rowins <row> [n]          insert n blank rows before A1 row <row>
//	rowdel <row> [n]          delete n rows starting at A1 row <row>
//	recalc                    force a full recalculation
//
// Parsing and execution are separate: Parse returns positioned statements
// (or a *Error carrying the statement index, byte offset, and offending
// text), and Exec applies them to an engine. Every Op prints as its own
// canonical statement, so an op sequence built programmatically — e.g. a
// minimized fuzzer counterexample — replays verbatim through sheetcli.
package tracelang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/sheet"
)

// Op is one executable statement. String returns the canonical statement
// text, which re-parses to an equivalent op.
type Op interface {
	apply(x *Exec) error
	String() string
}

// Stmt is a parsed statement with its position in the script.
type Stmt struct {
	Index int // 1-based statement number
	Pos   int // 1-based byte offset of the statement's first non-space byte
	Op    Op
}

// Error is a positioned parse failure: which statement, where in the
// script, what text, and why.
type Error struct {
	Index int    // 1-based statement number
	Pos   int    // 1-based byte offset into the script
	Stmt  string // the offending statement, trimmed
	Msg   string
}

func (e *Error) Error() string {
	return fmt.Sprintf("trace script: statement %d at offset %d (%q): %s",
		e.Index, e.Pos, e.Stmt, e.Msg)
}

// Parse splits the script on semicolons and parses each statement. Blank
// statements are skipped (so trailing semicolons are fine). The first
// malformed statement aborts parsing with a *Error.
func Parse(script string) ([]Stmt, error) {
	var stmts []Stmt
	index := 0
	offset := 0
	for _, raw := range strings.Split(script, ";") {
		trimmed := strings.TrimSpace(raw)
		pos := offset + strings.Index(raw, trimmed) + 1
		offset += len(raw) + 1
		if trimmed == "" {
			continue
		}
		index++
		op, msg := parseStmt(trimmed)
		if msg != "" {
			return nil, &Error{Index: index, Pos: pos, Stmt: trimmed, Msg: msg}
		}
		stmts = append(stmts, Stmt{Index: index, Pos: pos, Op: op})
	}
	return stmts, nil
}

// Format renders ops as a replayable script.
func Format(ops []Op) string {
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, "; ")
}

// parseStmt parses one trimmed, non-empty statement; on failure it returns
// a diagnostic message and the error position is supplied by the caller.
func parseStmt(stmt string) (Op, string) {
	f := strings.Fields(stmt)
	switch kw := strings.ToLower(f[0]); kw {
	case "sheet":
		if len(f) != 2 {
			return nil, "want: sheet <name>"
		}
		return SheetOp{Name: f[1]}, ""
	case "set":
		if len(f) < 3 {
			return nil, "want: set <addr> <value>"
		}
		a, err := cell.ParseAddr(f[1])
		if err != nil {
			return nil, err.Error()
		}
		return SetOp{At: a, Raw: strings.Join(f[2:], " ")}, ""
	case "formula":
		if len(f) < 3 {
			return nil, "want: formula <addr> =TEXT"
		}
		a, err := cell.ParseAddr(f[1])
		if err != nil {
			return nil, err.Error()
		}
		text := strings.Join(f[2:], " ")
		if !strings.HasPrefix(text, "=") {
			return nil, "formula text must start with '='"
		}
		return FormulaOp{At: a, Text: text}, ""
	case "sort":
		if len(f) < 2 || len(f) > 3 {
			return nil, "want: sort <col> [asc|desc]"
		}
		col, err := cell.ParseColName(f[1])
		if err != nil {
			return nil, err.Error()
		}
		asc := true
		if len(f) == 3 {
			switch strings.ToLower(f[2]) {
			case "asc":
			case "desc":
				asc = false
			default:
				return nil, "sort order must be asc or desc"
			}
		}
		return SortOp{Col: col, Asc: asc}, ""
	case "filter":
		if len(f) == 2 && strings.EqualFold(f[1], "off") {
			return FilterOffOp{}, ""
		}
		if len(f) != 3 {
			return nil, "want: filter <col> <value> | filter off"
		}
		col, err := cell.ParseColName(f[1])
		if err != nil {
			return nil, err.Error()
		}
		return FilterOp{Col: col, Value: f[2]}, ""
	case "pivot":
		if len(f) != 3 {
			return nil, "want: pivot <dimcol> <measurecol>"
		}
		dim, err := cell.ParseColName(f[1])
		if err != nil {
			return nil, err.Error()
		}
		meas, err := cell.ParseColName(f[2])
		if err != nil {
			return nil, err.Error()
		}
		return PivotOp{Dim: dim, Measure: meas}, ""
	case "find":
		if len(f) != 3 {
			return nil, "want: find <x> <y>"
		}
		return FindOp{Find: f[1], Replace: f[2]}, ""
	case "paste":
		if len(f) != 3 {
			return nil, "want: paste <range> <addr>"
		}
		src, err := cell.ParseRange(f[1])
		if err != nil {
			return nil, err.Error()
		}
		dst, err := cell.ParseAddr(f[2])
		if err != nil {
			return nil, err.Error()
		}
		return PasteOp{Src: src, Dst: dst}, ""
	case "rowins", "rowdel":
		if len(f) < 2 || len(f) > 3 {
			return nil, "want: " + kw + " <row> [n]"
		}
		at, err := strconv.Atoi(f[1])
		if err != nil || at < 1 {
			return nil, "row must be a positive A1 row number"
		}
		n := 1
		if len(f) == 3 {
			n, err = strconv.Atoi(f[2])
			if err != nil || n < 1 {
				return nil, "count must be a positive integer"
			}
		}
		if kw == "rowins" {
			return RowInsOp{At: at, N: n}, ""
		}
		return RowDelOp{At: at, N: n}, ""
	case "recalc":
		if len(f) != 1 {
			return nil, "want: recalc"
		}
		return RecalcOp{}, ""
	default:
		return nil, "unknown operation " + strconv.Quote(kw)
	}
}

// Exec holds the execution state of a script: the engine and the active
// sheet the next statement targets.
type Exec struct {
	Eng *engine.Engine
	S   *sheet.Sheet
}

// NewExec starts execution on the workbook's first sheet.
func NewExec(eng *engine.Engine) *Exec {
	return &Exec{Eng: eng, S: eng.Workbook().First()}
}

// Apply runs one op against the current state.
func (x *Exec) Apply(op Op) error { return op.apply(x) }

// Run parses and executes a whole script on a fresh Exec. Execution errors
// are wrapped with the statement's index and canonical text.
func Run(eng *engine.Engine, script string) error {
	stmts, err := Parse(script)
	if err != nil {
		return err
	}
	x := NewExec(eng)
	for _, st := range stmts {
		if err := x.Apply(st.Op); err != nil {
			return fmt.Errorf("trace script: statement %d (%s): %w", st.Index, st.Op, err)
		}
	}
	return nil
}

// SheetOp switches the active sheet.
type SheetOp struct{ Name string }

func (o SheetOp) String() string { return "sheet " + o.Name }
func (o SheetOp) apply(x *Exec) error {
	s := x.Eng.Workbook().Sheet(o.Name)
	if s == nil {
		return fmt.Errorf("no sheet %q", o.Name)
	}
	x.S = s
	return nil
}

// SetOp writes a literal cell; numeric-looking text becomes a number, the
// same coercion a cell editor applies.
type SetOp struct {
	At  cell.Addr
	Raw string
}

func (o SetOp) String() string { return fmt.Sprintf("set %s %s", o.At.A1(), o.Raw) }
func (o SetOp) apply(x *Exec) error {
	v := cell.Str(o.Raw)
	if n, err := strconv.ParseFloat(o.Raw, 64); err == nil {
		v = cell.Num(n)
	}
	_, err := x.Eng.SetCell(x.S, o.At, v)
	return err
}

// FormulaOp inserts a formula at a cell.
type FormulaOp struct {
	At   cell.Addr
	Text string
}

func (o FormulaOp) String() string { return fmt.Sprintf("formula %s %s", o.At.A1(), o.Text) }
func (o FormulaOp) apply(x *Exec) error {
	_, _, err := x.Eng.InsertFormula(x.S, o.At, o.Text)
	return err
}

// SortOp sorts the active sheet by a column (one header row).
type SortOp struct {
	Col int
	Asc bool
}

func (o SortOp) String() string {
	dir := "asc"
	if !o.Asc {
		dir = "desc"
	}
	return fmt.Sprintf("sort %s %s", cell.ColName(o.Col), dir)
}
func (o SortOp) apply(x *Exec) error {
	_, err := x.Eng.Sort(x.S, o.Col, o.Asc, 1)
	return err
}

// FilterOp filters rows on a column value (one header row).
type FilterOp struct {
	Col   int
	Value string
}

func (o FilterOp) String() string { return fmt.Sprintf("filter %s %s", cell.ColName(o.Col), o.Value) }
func (o FilterOp) apply(x *Exec) error {
	_, _, err := x.Eng.Filter(x.S, o.Col, cell.Str(o.Value), 1)
	return err
}

// FilterOffOp clears the active sheet's filter.
type FilterOffOp struct{}

func (o FilterOffOp) String() string { return "filter off" }
func (o FilterOffOp) apply(x *Exec) error {
	x.Eng.ClearFilter(x.S)
	return nil
}

// PivotOp builds a pivot table into a new sheet (one header row).
type PivotOp struct{ Dim, Measure int }

func (o PivotOp) String() string {
	return fmt.Sprintf("pivot %s %s", cell.ColName(o.Dim), cell.ColName(o.Measure))
}
func (o PivotOp) apply(x *Exec) error {
	_, _, err := x.Eng.PivotTable(x.S, o.Dim, o.Measure, 1)
	return err
}

// FindOp is find-and-replace over the active sheet.
type FindOp struct{ Find, Replace string }

func (o FindOp) String() string { return fmt.Sprintf("find %s %s", o.Find, o.Replace) }
func (o FindOp) apply(x *Exec) error {
	_, _, err := x.Eng.FindReplace(x.S, o.Find, o.Replace)
	return err
}

// PasteOp copy-pastes a range to a destination anchor.
type PasteOp struct {
	Src cell.Range
	Dst cell.Addr
}

func (o PasteOp) String() string { return fmt.Sprintf("paste %s %s", o.Src, o.Dst.A1()) }
func (o PasteOp) apply(x *Exec) error {
	_, _, err := x.Eng.CopyPaste(x.S, o.Src, o.Dst)
	return err
}

// RowInsOp inserts N blank rows before A1 row At.
type RowInsOp struct{ At, N int }

func (o RowInsOp) String() string { return fmt.Sprintf("rowins %d %d", o.At, o.N) }
func (o RowInsOp) apply(x *Exec) error {
	_, err := x.Eng.InsertRows(x.S, o.At-1, o.N)
	return err
}

// RowDelOp deletes N rows starting at A1 row At.
type RowDelOp struct{ At, N int }

func (o RowDelOp) String() string { return fmt.Sprintf("rowdel %d %d", o.At, o.N) }
func (o RowDelOp) apply(x *Exec) error {
	_, err := x.Eng.DeleteRows(x.S, o.At-1, o.N)
	return err
}

// RecalcOp forces a full recalculation of the active sheet.
type RecalcOp struct{}

func (o RecalcOp) String() string { return "recalc" }
func (o RecalcOp) apply(x *Exec) error {
	_, err := x.Eng.Recalculate(x.S)
	return err
}
