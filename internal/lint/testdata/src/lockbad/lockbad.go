// Package lockbad holds one flagged guarded-field write per function; the
// lockcheck test asserts the count.
package lockbad

import "sync"

type box struct {
	mu    sync.Mutex
	items map[string]int // guarded by mu
	count int            // guarded by mu
}

type rwbox struct {
	mu   sync.RWMutex
	vals []int // guarded by mu
}

// unlockedPut: method writes a guarded map element with no lock in sight.
func (b *box) unlockedPut(k string, v int) { b.items[k] = v }

// unlockedInc: ++ on a guarded field, via a parameter.
func unlockedInc(b *box) { b.count++ }

// lateLock: the lock comes after the write, which does not help.
func (b *box) lateLock(k string) {
	b.items[k] = 0
	b.mu.Lock()
	b.mu.Unlock()
}

// wrongBase: a's lock is held, but the write goes through b.
func wrongBase(a, b *box) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.count = 0
}

// rlockOnly: a read lock does not license a write.
func (r *rwbox) rlockOnly(v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.vals = append(r.vals, v)
}

// callerHeld: relies on the caller holding b.mu — flagged by default,
// suppressed once the function is allowlisted.
func callerHeld(b *box) { b.count = 1 }
