// Package absint is an abstract-interpretation value analysis for the
// formula language: a topological abstract interpreter over compiled
// formula ASTs (internal/formula) and the dependency graph
// (internal/graph) that refines the kind/error inference of
// internal/typecheck with *values* — a numeric interval per cell, a
// sortedness direction per column, and certified constants — without
// evaluating a single formula.
//
// The paper's lookup and aggregation cliffs come from per-cell
// interpretation that cannot exploit what is statically knowable about a
// column: VLOOKUP scans linearly even over monotone key columns, and
// error/coercion branches run on values that can never be errors. This
// package computes the certificates that remove exactly that work. It
// feeds four consumers: the version-keyed ValueCerts the optimized engine
// issues at install pre-flight (internal/engine/valuecert.go — binary-
// search lookups, branch-elided prefix kernels, guarded constant skips),
// the `sheetcli absint` report, the `unsorted-lookup` analyzer rule and
// cert-aware cost estimate (internal/analyze), and the per-region
// certificate counts in the regions report.
//
// Soundness contract: for every cell, the value observed after evaluation
// is admitted by the inferred abstract value (Value.Admits) — kind and
// error mask as in typecheck, plus interval membership for numbers and
// exact equality for certified constants. The lattice now has infinite
// ascending chains (intervals), so the fixpoint loop widens unstable
// bounds to ±Inf after a fixed pass budget. The differential soundness
// test checks the contract against the evaluator over every workload
// generator and the fuzzdiff harness hunts unsound transfers nightly.
package absint

import (
	"fmt"
	"math"

	"repro/internal/cell"
	"repro/internal/typecheck"
)

// Interval is a closed interval [Lo, Hi] over the extended reals bounding
// every Number a cell can hold. Lo > Hi encodes the empty interval (the
// cell can hold no number at all); EmptyInterval is the canonical empty.
// Constructors never produce NaN bounds: any NaN collapses to Full.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// EmptyInterval returns the canonical empty interval.
func EmptyInterval() Interval { return Interval{Lo: math.Inf(1), Hi: math.Inf(-1)} }

// Full returns the no-information interval [-Inf, +Inf].
func Full() Interval { return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)} }

// Point returns the singleton interval [x, x].
func Point(x float64) Interval { return Span(x, x) }

// Span returns [lo, hi], collapsing NaN bounds to Full (NaN arises from
// Inf-Inf style corner arithmetic, where no finite bound is sound).
func Span(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return Full()
	}
	return Interval{Lo: lo, Hi: hi}
}

// IsEmpty reports whether no number is admitted.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsFull reports whether the interval carries no information.
func (iv Interval) IsFull() bool {
	return math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1)
}

// Contains is interval membership. A NaN value (reachable through corner
// cases like LN(0)*0 upstream) is admitted only by the full interval,
// which is the only abstraction that makes no claim about it.
func (iv Interval) Contains(x float64) bool {
	if math.IsNaN(x) {
		return iv.IsFull()
	}
	return x >= iv.Lo && x <= iv.Hi
}

// Union is the lattice join: the smallest interval containing both.
func (iv Interval) Union(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{Lo: math.Min(iv.Lo, o.Lo), Hi: math.Max(iv.Hi, o.Hi)}
}

// Hull extends the interval to include x.
func (iv Interval) Hull(x float64) Interval { return iv.Union(Point(x)) }

// WidenTo is the widening operator: next must be a superset of iv (it is
// the joined successor in the fixpoint loop); any bound that still moved
// jumps straight to its infinity, so the chain stabilizes in one step.
func (iv Interval) WidenTo(next Interval) Interval {
	if iv.IsEmpty() || next.IsEmpty() {
		return next
	}
	out := next
	if next.Lo < iv.Lo {
		out.Lo = math.Inf(-1)
	}
	if next.Hi > iv.Hi {
		out.Hi = math.Inf(1)
	}
	return out
}

// Add is interval addition (endpoint-monotone).
func (iv Interval) Add(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	return Span(iv.Lo+o.Lo, iv.Hi+o.Hi)
}

// Sub is interval subtraction.
func (iv Interval) Sub(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	return Span(iv.Lo-o.Hi, iv.Hi-o.Lo)
}

// Mul is four-corner interval multiplication.
func (iv Interval) Mul(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	return corners(iv.Lo*o.Lo, iv.Lo*o.Hi, iv.Hi*o.Lo, iv.Hi*o.Hi)
}

// Div is four-corner interval division; the caller must have excluded 0
// from o (a divisor interval containing 0 means #DIV/0! is possible and
// the quotient is unbounded — the transfer function handles that case).
func (iv Interval) Div(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	return corners(iv.Lo/o.Lo, iv.Lo/o.Hi, iv.Hi/o.Lo, iv.Hi/o.Hi)
}

// Neg is interval negation.
func (iv Interval) Neg() Interval {
	if iv.IsEmpty() {
		return iv
	}
	return Interval{Lo: -iv.Hi, Hi: -iv.Lo}
}

// Scale multiplies both bounds by a positive constant.
func (iv Interval) Scale(k float64) Interval {
	if iv.IsEmpty() {
		return iv
	}
	return Span(iv.Lo*k, iv.Hi*k)
}

// Abs is the interval of |x| for x in iv.
func (iv Interval) Abs() Interval {
	if iv.IsEmpty() {
		return iv
	}
	lo := 0.0
	if !iv.Contains(0) {
		lo = math.Min(math.Abs(iv.Lo), math.Abs(iv.Hi))
	}
	return Span(lo, math.Max(math.Abs(iv.Lo), math.Abs(iv.Hi)))
}

// corners joins arithmetic corner results; a NaN corner (0*Inf, Inf-Inf,
// Inf/Inf) means no finite bound is sound on that side, so go Full.
func corners(a, b, c, d float64) Interval {
	for _, x := range [...]float64{a, b, c, d} {
		if math.IsNaN(x) {
			return Full()
		}
	}
	return Interval{
		Lo: math.Min(math.Min(a, b), math.Min(c, d)),
		Hi: math.Max(math.Max(a, b), math.Max(c, d)),
	}
}

// String renders "[lo, hi]", "(empty)" for the empty interval.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "(empty)"
	}
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}

// Dir is a column's certified sortedness direction over its current
// values. Ascending/descending certificates additionally assert every
// cell of the run is a Number (the precondition under which binary
// search is observably identical to the evaluator's linear scans; see
// SortedAscRun).
type Dir uint8

// Sortedness directions.
const (
	DirNone Dir = iota
	DirAsc
	DirDesc
)

// String renders the direction ("", "asc", "desc").
func (d Dir) String() string {
	switch d {
	case DirAsc:
		return "asc"
	case DirDesc:
		return "desc"
	default:
		return ""
	}
}

// Value is the abstract value of one cell: the typecheck kind/error
// abstraction, refined with a numeric interval and an optional certified
// constant. The zero Value is bottom (no value reaches the cell; note the
// zero Interval is the point [0,0], which norm masks while the kind set
// excludes numbers).
type Value struct {
	// Ab is the kind/error component, shared with internal/typecheck.
	Ab typecheck.Abstract
	// Num bounds the cell's value whenever it holds a Number. It is
	// meaningful only when Ab.Kinds includes KNumber; norm keeps it empty
	// otherwise.
	Num Interval
	// Const, when non-nil, asserts the cell evaluates to exactly this
	// value under the current sheet state. Consumers must apply the
	// issuance guard (compare against the cached value) before acting on
	// it; see SheetCert.
	Const *cell.Value
}

// TopValue is the no-information abstract value.
func TopValue() Value {
	return Value{Ab: typecheck.Top, Num: Full()}
}

// Exactly abstracts a concrete stored value: the singleton abstraction
// admitting exactly that value, with the constant recorded.
func Exactly(v cell.Value) Value {
	out := Value{Ab: typecheck.Exactly(v), Num: EmptyInterval()}
	if v.Kind == cell.Number {
		out.Num = Point(v.Num)
	}
	c := v
	out.Const = &c
	return out
}

// norm re-establishes the representation invariant: a value whose kind
// set excludes numbers carries the empty interval.
func (v Value) norm() Value {
	if v.Ab.Kinds&typecheck.KNumber == 0 {
		v.Num = EmptyInterval()
	}
	return v
}

// eq is structural equality (the fixpoint's change detector), comparing
// through the Const pointer.
func (v Value) eq(w Value) bool {
	v, w = v.norm(), w.norm()
	if v.Ab != w.Ab || v.Num != w.Num {
		return false
	}
	if (v.Const == nil) != (w.Const == nil) {
		return false
	}
	return v.Const == nil || *v.Const == *w.Const
}

// IsTop reports whether the value carries no information.
func (v Value) IsTop() bool {
	return v.Ab == typecheck.Top && v.Num.IsFull() && v.Const == nil
}

// isBottom reports whether no value reaches the cell yet (the fixpoint
// seed): the kind and error sets are empty and nothing is certified.
func (v Value) isBottom() bool {
	return v.Ab == (typecheck.Abstract{}) && v.Const == nil
}

// Join is the lattice join: kinds and errors union, intervals union, and
// the constant survives only when both sides certify the same one. Bottom
// is the identity — joining it must not erase the other side's constant.
func (v Value) Join(w Value) Value {
	v, w = v.norm(), w.norm()
	if v.isBottom() {
		return w
	}
	if w.isBottom() {
		return v
	}
	out := Value{Ab: v.Ab.Union(w.Ab), Num: v.Num.Union(w.Num)}
	if v.Const != nil && w.Const != nil && *v.Const == *w.Const {
		out.Const = v.Const
	}
	return out
}

// WidenTo widens toward next (the joined successor): the finite kind and
// constant components come from next unchanged, unstable interval bounds
// jump to ±Inf.
func (v Value) WidenTo(next Value) Value {
	out := next.norm()
	out.Num = v.norm().Num.WidenTo(out.Num)
	return out
}

// Admits is the soundness relation the differential tests check: the
// concrete value must be admitted by the kind/error component, lie inside
// the interval when it is a number, and equal the constant when one is
// certified.
func (v Value) Admits(cv cell.Value) bool {
	v = v.norm()
	if !v.Ab.Admits(cv) {
		return false
	}
	if cv.Kind == cell.Number && !v.Num.Contains(cv.Num) {
		return false
	}
	if v.Const != nil && cv != *v.Const {
		return false
	}
	return true
}

// String renders the abstraction for reports: the typecheck rendering,
// then the interval when it adds information, then the constant.
func (v Value) String() string {
	v = v.norm()
	s := v.Ab.String()
	if v.Ab.Kinds&typecheck.KNumber != 0 && !v.Num.IsFull() {
		s += " in " + v.Num.String()
	}
	if v.Const != nil {
		s += " const=" + constText(*v.Const)
	}
	return s
}

// constText renders a certified constant compactly for reports: the
// display coercion, with text quoted so an empty string stays visible.
func constText(v cell.Value) string {
	if v.Kind == cell.Text {
		return fmt.Sprintf("%q", v.Str)
	}
	if v.Kind == cell.Empty {
		return "(empty)"
	}
	return v.AsString()
}
