package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// SidecarSchema versions the sidecar JSON layout. Consumers (the bench-
// smoke CI stage via cmd/obscheck, perf-trajectory tooling) match it
// exactly. v2 added percentile verdicts and latency histograms to the SLO
// block, latency instruments to the metrics snapshot, and the plan-drift
// report.
const SidecarSchema = "spreadbench-obs-sidecar/v2"

// sidecarSchemaV1 is the retired layout; parsing rejects it with a
// regeneration hint rather than a bare mismatch.
const sidecarSchemaV1 = "spreadbench-obs-sidecar/v1"

// Sidecar is the metrics/trace companion file a benchmark runner writes
// next to its results: the SLO verdicts, the metric registry snapshot, the
// plan-drift report, and a pointer to the Chrome trace file when one was
// written.
type Sidecar struct {
	// Schema is always SidecarSchema.
	Schema string `json:"schema"`
	// Kind is the producing runner: "bct", "oot", "all", or "trace".
	Kind string `json:"kind"`
	// Systems lists the benchmarked system profiles.
	Systems []string `json:"systems,omitempty"`
	// SLO holds the interactivity verdicts (simulated clock).
	SLO SLOReport `json:"slo"`
	// Metrics snapshots the obs registry at the end of the run.
	Metrics MetricsSnapshot `json:"metrics"`
	// Drift holds the plan-drift report when any planner gate recorded an
	// observation during the run.
	Drift *DriftReport `json:"drift,omitempty"`
	// Spans is the number of spans recorded during the run; SpansDropped
	// counts any lost at the buffer cap.
	Spans        int   `json:"spans"`
	SpansDropped int64 `json:"spans_dropped,omitempty"`
	// TraceFile names the Chrome trace-event JSON written beside this
	// sidecar, when tracing to a file was requested.
	TraceFile string `json:"trace_file,omitempty"`
}

// WriteSidecar renders the sidecar as indented JSON.
func WriteSidecar(w io.Writer, sc *Sidecar) error {
	if sc.Schema == "" {
		sc.Schema = SidecarSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// strictUnmarshal decodes JSON rejecting unknown fields — schema drift in a
// producer surfaces as a parse error here instead of silently dropped data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A trailing second document means the file is not a single object.
	if dec.More() {
		return fmt.Errorf("trailing data after document")
	}
	return nil
}

// validateLatencyHist checks a sparse histogram snapshot: ascending unique
// bounds, positive counts, and a bucket sum matching the total.
func validateLatencyHist(what string, h LatencyHistSnap) error {
	var sum int64
	prev := int64(-1)
	for _, b := range h.Buckets {
		if b.Count <= 0 {
			return fmt.Errorf("%s: bucket %d has count %d, want > 0", what, b.UpperNS, b.Count)
		}
		if b.UpperNS <= prev {
			return fmt.Errorf("%s: bucket bounds not strictly ascending at %d", what, b.UpperNS)
		}
		prev = b.UpperNS
		sum += b.Count
	}
	if sum != h.Count {
		return fmt.Errorf("%s: bucket counts sum to %d, total says %d", what, sum, h.Count)
	}
	return nil
}

// ParseSidecar decodes and validates a sidecar document. It is strict —
// unknown fields, retired schema versions, missing kind, non-monotone
// percentiles, or histogram counts that don't reconcile all fail — so the
// CI smoke stage catches schema drift, not just syntax errors.
func ParseSidecar(data []byte) (*Sidecar, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("sidecar: %w", err)
	}
	if probe.Schema == sidecarSchemaV1 {
		return nil, fmt.Errorf("sidecar: schema %q is no longer supported; regenerate with a current -sidecar run", probe.Schema)
	}
	if probe.Schema != SidecarSchema {
		return nil, fmt.Errorf("sidecar: schema %q, want %q", probe.Schema, SidecarSchema)
	}
	var sc Sidecar
	if err := strictUnmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("sidecar: %w", err)
	}
	if sc.Kind == "" {
		return nil, fmt.Errorf("sidecar: missing kind")
	}
	if sc.SLO.BoundMS <= 0 {
		return nil, fmt.Errorf("sidecar: SLO bound %v ms, want > 0", sc.SLO.BoundMS)
	}
	for _, op := range sc.SLO.Ops {
		if op.Op == "" {
			return nil, fmt.Errorf("sidecar: SLO op with empty name")
		}
		if op.Violations > op.Count {
			return nil, fmt.Errorf("sidecar: op %q has %d violations out of %d observations", op.Op, op.Violations, op.Count)
		}
		// Percentiles are bucket upper bounds, so p99 may exceed the exact
		// WorstMS by up to one bucket width — only monotonicity is checkable.
		if op.P50MS > op.P95MS || op.P95MS > op.P99MS {
			return nil, fmt.Errorf("sidecar: op %q percentiles not monotone (p50 %.3f p95 %.3f p99 %.3f)",
				op.Op, op.P50MS, op.P95MS, op.P99MS)
		}
		if op.Hist.Count != op.Count {
			return nil, fmt.Errorf("sidecar: op %q histogram holds %d observations, op count says %d", op.Op, op.Hist.Count, op.Count)
		}
		if err := validateLatencyHist(fmt.Sprintf("sidecar: op %q", op.Op), op.Hist); err != nil {
			return nil, err
		}
	}
	for _, h := range sc.Metrics.Histograms {
		if len(h.Counts) != len(h.BoundsMS)+1 {
			return nil, fmt.Errorf("sidecar: histogram %q has %d counts for %d bounds", h.Name, len(h.Counts), len(h.BoundsMS))
		}
	}
	for _, l := range sc.Metrics.Latencies {
		if l.Name == "" {
			return nil, fmt.Errorf("sidecar: latency metric with empty name")
		}
		if l.P50NS > l.P95NS || l.P95NS > l.P99NS {
			return nil, fmt.Errorf("sidecar: latency %q/%q percentiles not monotone", l.Name, l.Label)
		}
		if l.Hist.Count != l.Count {
			return nil, fmt.Errorf("sidecar: latency %q/%q histogram holds %d observations, count says %d", l.Name, l.Label, l.Hist.Count, l.Count)
		}
		if err := validateLatencyHist(fmt.Sprintf("sidecar: latency %q/%q", l.Name, l.Label), l.Hist); err != nil {
			return nil, err
		}
	}
	if sc.Drift != nil {
		for _, g := range sc.Drift.Gates {
			if g.Gate == "" || g.Profile == "" {
				return nil, fmt.Errorf("sidecar: drift gate with empty name or profile")
			}
			if g.Count <= 0 {
				return nil, fmt.Errorf("sidecar: drift gate %q/%q has count %d, want > 0", g.Profile, g.Gate, g.Count)
			}
			if len(g.Buckets) != len(sc.Drift.RatioBounds)+1 {
				return nil, fmt.Errorf("sidecar: drift gate %q/%q has %d buckets for %d bounds",
					g.Profile, g.Gate, len(g.Buckets), len(sc.Drift.RatioBounds))
			}
		}
	}
	return &sc, nil
}

// BenchSchema versions the machine-readable benchmark file scripts/bench.sh
// emits for the perf-trajectory record. v2 added the per-benchmark sample
// count (the min-of-N provenance the regression comparator relies on).
const BenchSchema = "spreadbench-bench/v2"

// benchSchemaV1 is the retired layout that recorded a single sample with a
// hard-wired iteration count.
const benchSchemaV1 = "spreadbench-bench/v1"

// BenchResult is one benchmark's headline numbers. With multiple samples,
// NsPerOp/AllocsPerOp/BytesPerOp are from the fastest sample (min-of-N —
// the standard noise reduction for micro-benchmarks) and Iterations is that
// sample's b.N.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Samples is how many runs of the benchmark the figures were minimized
	// over.
	Samples int `json:"samples"`
}

// BenchFile is the BENCH_engine.json layout.
type BenchFile struct {
	Schema     string        `json:"schema"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// ParseBenchFile decodes and validates a BENCH_engine.json document.
func ParseBenchFile(data []byte) (*BenchFile, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("bench file: %w", err)
	}
	if probe.Schema == benchSchemaV1 {
		return nil, fmt.Errorf("bench file: schema %q is no longer supported; regenerate with scripts/bench.sh", probe.Schema)
	}
	if probe.Schema != BenchSchema {
		return nil, fmt.Errorf("bench file: schema %q, want %q", probe.Schema, BenchSchema)
	}
	var bf BenchFile
	if err := strictUnmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("bench file: %w", err)
	}
	if len(bf.Benchmarks) == 0 {
		return nil, fmt.Errorf("bench file: no benchmarks")
	}
	for _, b := range bf.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("bench file: benchmark with empty name")
		}
		if b.NsPerOp < 0 || b.AllocsPerOp < 0 {
			return nil, fmt.Errorf("bench file: benchmark %q has negative metrics", b.Name)
		}
		if b.Iterations < 1 {
			return nil, fmt.Errorf("bench file: benchmark %q has %d iterations, want >= 1", b.Name, b.Iterations)
		}
		if b.Samples < 1 {
			return nil, fmt.Errorf("bench file: benchmark %q has %d samples, want >= 1", b.Name, b.Samples)
		}
	}
	return &bf, nil
}
