package formula

import (
	"testing"

	"repro/internal/cell"
)

func TestDateFunctions(t *testing.T) {
	cases := []struct {
		in   string
		want cell.Value
	}{
		{"=DATE(1899,12,31)", cell.Num(1)},
		{"=DATE(1900,1,1)", cell.Num(2)},
		{"=DATE(2020,13,1)", cell.Num(44197)}, // rolls to 2021-01-01
		{"=YEAR(DATE(2026,7,6))", cell.Num(2026)},
		{"=MONTH(DATE(2026,7,6))", cell.Num(7)},
		{"=DAY(DATE(2026,7,6))", cell.Num(6)},
		{"=HOUR(DATE(2026,7,6)+0.5)", cell.Num(12)},
		{"=MINUTE(DATE(2026,7,6)+0.25)", cell.Num(0)},
		{"=WEEKDAY(DATE(2026,7,6))", cell.Num(2)},   // a Monday; Sunday=1 mode
		{"=WEEKDAY(DATE(2026,7,6),2)", cell.Num(1)}, // Monday=1 mode
		{"=WEEKDAY(DATE(2026,7,6),3)", cell.Num(0)}, // Monday=0 mode
		{"=DAYS(DATE(2026,7,6),DATE(2026,7,1))", cell.Num(5)},
		{"=MONTH(EDATE(DATE(2020,1,31),1))", cell.Num(2)},
		{"=DAY(EDATE(DATE(2020,1,31),1))", cell.Num(29)}, // leap clamp
		{"=DAY(EOMONTH(DATE(2026,2,10),0))", cell.Num(28)},
		{"=MONTH(EOMONTH(DATE(2026,1,15),-2))", cell.Num(11)},
		{"=YEAR(-5)", cell.Errorf(cell.ErrValue)},
	}
	for _, c := range cases {
		got := evalText(t, fixture, c.in)
		if !valuesEqual(got, c.want) {
			t.Errorf("%s = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestDateSerialRoundTrip(t *testing.T) {
	// fromSerial(toSerial(t)) is identity on whole days.
	for _, serial := range []float64{1, 100, 36526, 46209} {
		if got := toSerial(fromSerial(serial)); got != serial {
			t.Errorf("serial %v round-tripped to %v", serial, got)
		}
	}
}

// multiFixture: two parallel columns for multi-criteria aggregates.
var multiFixture = mapSource{
	// A: region, B: product, C: sales
	"A1": cell.Str("east"), "B1": cell.Str("ice"), "C1": cell.Num(10),
	"A2": cell.Str("east"), "B2": cell.Str("tea"), "C2": cell.Num(20),
	"A3": cell.Str("west"), "B3": cell.Str("ice"), "C3": cell.Num(30),
	"A4": cell.Str("west"), "B4": cell.Str("tea"), "C4": cell.Num(40),
	"A5": cell.Str("east"), "B5": cell.Str("ice"), "C5": cell.Num(50),
}

func TestMultiCriteriaAggregates(t *testing.T) {
	cases := []struct {
		in   string
		want cell.Value
	}{
		{`=COUNTIFS(A1:A5,"east")`, cell.Num(3)},
		{`=COUNTIFS(A1:A5,"east",B1:B5,"ice")`, cell.Num(2)},
		{`=COUNTIFS(A1:A5,"east",C1:C5,">15")`, cell.Num(2)},
		{`=SUMIFS(C1:C5,A1:A5,"east")`, cell.Num(80)},
		{`=SUMIFS(C1:C5,A1:A5,"east",B1:B5,"ice")`, cell.Num(60)},
		{`=AVERAGEIFS(C1:C5,B1:B5,"tea")`, cell.Num(30)},
		{`=MAXIFS(C1:C5,A1:A5,"east")`, cell.Num(50)},
		{`=MINIFS(C1:C5,A1:A5,"west")`, cell.Num(30)},
		{`=MAXIFS(C1:C5,A1:A5,"north")`, cell.Num(0)}, // no match
		{`=AVERAGEIFS(C1:C5,A1:A5,"north")`, cell.Errorf(cell.ErrDiv0)},
		// Shape mismatch and odd arity are errors.
		{`=COUNTIFS(A1:A5,"east",B1:B4,"ice")`, cell.Errorf(cell.ErrValue)},
		{`=SUMIFS(C1:C5,A1:A5)`, cell.Errorf(cell.ErrValue)},
	}
	for _, c := range cases {
		got := evalText(t, multiFixture, c.in)
		if !valuesEqual(got, c.want) {
			t.Errorf("%s = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestCountIfsMatchesCountIfSingle(t *testing.T) {
	// COUNTIFS with one clause must agree with COUNTIF.
	for _, crit := range []string{`"east"`, `">20"`} {
		a := evalText(t, multiFixture, `=COUNTIFS(A1:A5,`+crit+`)`)
		b := evalText(t, multiFixture, `=COUNTIF(A1:A5,`+crit+`)`)
		if !valuesEqual(a, b) {
			t.Errorf("COUNTIFS %s = %v, COUNTIF = %v", crit, a, b)
		}
	}
}

func TestSumProduct(t *testing.T) {
	src := mapSource{
		"A1": cell.Num(1), "A2": cell.Num(2), "A3": cell.Num(3),
		"B1": cell.Num(4), "B2": cell.Num(5), "B3": cell.Num(6),
		"C1": cell.Str("x"), "C2": cell.Num(10), "C3": cell.Value{},
	}
	cases := []struct {
		in   string
		want cell.Value
	}{
		{"=SUMPRODUCT(A1:A3,B1:B3)", cell.Num(4 + 10 + 18)},
		{"=SUMPRODUCT(A1:A3)", cell.Num(6)},
		{"=SUMPRODUCT(A1:A3,C1:C3)", cell.Num(20)}, // text/empty rows contribute 0
		{"=SUMPRODUCT(2,3)", cell.Num(6)},          // scalar path
		{"=SUMPRODUCT(A1:A3,B1:B2)", cell.Errorf(cell.ErrValue)},
	}
	for _, c := range cases {
		got := evalText(t, src, c.in)
		if !valuesEqual(got, c.want) {
			t.Errorf("%s = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestRandFunctions(t *testing.T) {
	env := &Env{Src: fixture}
	seen := map[float64]bool{}
	for i := 0; i < 20; i++ {
		v := Eval(MustCompile("=RAND()"), env)
		if v.Kind != cell.Number || v.Num < 0 || v.Num >= 1 {
			t.Fatalf("RAND = %+v", v)
		}
		seen[v.Num] = true
	}
	if len(seen) < 15 {
		t.Errorf("RAND produced only %d distinct values in 20 draws", len(seen))
	}
	for i := 0; i < 50; i++ {
		v := Eval(MustCompile("=RANDBETWEEN(3,7)"), env)
		if v.Num < 3 || v.Num > 7 || v.Num != float64(int(v.Num)) {
			t.Fatalf("RANDBETWEEN = %v", v.Num)
		}
	}
	if v := Eval(MustCompile("=RANDBETWEEN(7,3)"), env); !v.IsError() {
		t.Error("inverted bounds must error")
	}
	// Injected stream.
	fixed := &Env{Src: fixture, Rand: func() float64 { return 0.5 }}
	if v := Eval(MustCompile("=RANDBETWEEN(0,9)"), fixed); v.Num != 5 {
		t.Errorf("injected RANDBETWEEN = %v, want 5", v.Num)
	}
	// Determinism: two fresh default envs agree.
	a := Eval(MustCompile("=RAND()"), &Env{Src: fixture})
	b := Eval(MustCompile("=RAND()"), &Env{Src: fixture})
	if a.Num != b.Num {
		t.Error("default RAND stream must be deterministic per fresh Env")
	}
}
