package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{1500 * time.Microsecond, "1.5ms"},
		{99 * time.Millisecond, "99.0ms"},
		{2300 * time.Millisecond, "2.30s"},
		{42 * time.Second, "42.0s"},
		{11 * time.Minute, "660s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFormatSize(t *testing.T) {
	if FormatSize(150) != "150" || FormatSize(6000) != "6k" || FormatSize(490000) != "490k" {
		t.Error("FormatSize")
	}
	if FormatSize(1234) != "1234" {
		t.Error("non-round size should print raw")
	}
}

func sampleSeries() []Series {
	return []Series{
		{Label: "excel/F", Points: []Point{
			{Size: 6000, Sim: 100 * time.Millisecond, Wall: time.Millisecond},
			{Size: 150, Sim: 10 * time.Millisecond, Wall: time.Millisecond},
		}},
		{Label: "calc/F", Points: []Point{
			{Size: 150, Sim: 450 * time.Millisecond},
		}},
	}
}

func TestWriteFigure(t *testing.T) {
	var buf bytes.Buffer
	WriteFigure(&buf, "fig: test", sampleSeries(), "a note")
	out := buf.String()
	for _, want := range []string{"fig: test", "# a note", "excel/F", "calc/F", "150", "6k", "10.0ms", "0.45s"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	// Missing point renders "-".
	if !strings.Contains(out, "-") {
		t.Error("missing cells should render '-'")
	}
}

func TestWriteFigureSortsSizes(t *testing.T) {
	var buf bytes.Buffer
	WriteFigure(&buf, "t", sampleSeries())
	out := buf.String()
	if strings.Index(out, "150") > strings.Index(out, "6k") {
		t.Error("rows must be size-sorted")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "series,rows,sim_ns,wall_ns,std_ns" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Sorted by size within series.
	if !strings.HasPrefix(lines[1], "excel/F,150,") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	s := sampleSeries()[0]
	_ = s.Sorted()
	if s.Points[0].Size != 6000 {
		t.Error("Sorted must not mutate the series")
	}
}

func TestWriteTable2(t *testing.T) {
	rows := []Table2Row{
		{Experiment: "Open", Cells: map[string]string{
			"excel/F": "0.6", "excel/V": "0.6", "calc/F": "0.015",
		}},
		{Experiment: "VLOOKUP", Cells: map[string]string{"excel/V": "100"}},
	}
	var buf bytes.Buffer
	WriteTable2(&buf, rows, []string{"excel", "calc"})
	out := buf.String()
	for _, want := range []string{"Open", "VLOOKUP", "excel(F)%", "calc(V)%", "0.015", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatLimitPercent(t *testing.T) {
	cases := []struct {
		frac float64
		want string
	}{
		{1.0, "100"},
		{2.0, "100"},
		{0.34, "34"},
		{0.07, "7.0"},
		{0.01, "1.0"},
		{0.006, "0.6"},
		{0.00015, "0.015"},
	}
	for _, c := range cases {
		if got := FormatLimitPercent(c.frac); got != c.want {
			t.Errorf("FormatLimitPercent(%v) = %q, want %q", c.frac, got, c.want)
		}
	}
}
