// Command datagen materializes the benchmark datasets of §3.2 to disk as
// SVF workbooks (and optionally CSV), for use with cmd/bct's open
// experiment or external tooling.
//
// Usage:
//
//	datagen [-out dir] [-rows n[,n...]] [-seed n] [-csv]
//
// By default the paper's 150 / 6k / 10k / 50k sizes are written in both
// Formula-value and Value-only variants.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/iolib"
	"repro/internal/workload"
)

func main() {
	var (
		out     = flag.String("out", "datasets", "output directory")
		rowsArg = flag.String("rows", "150,6000,10000,50000", "comma-separated data-row counts")
		seed    = flag.Uint64("seed", workload.DefaultSeed, "generator seed")
		alsoCSV = flag.Bool("csv", false, "additionally export Value-only variants as CSV")
	)
	flag.Parse()

	var sizes []int
	for _, f := range strings.Split(*rowsArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "datagen: bad row count %q\n", f)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	for _, m := range sizes {
		for _, formulas := range []bool{true, false} {
			variant := "value"
			if formulas {
				variant = "formula"
			}
			wb := workload.Weather(workload.Spec{Rows: m, Formulas: formulas, Seed: *seed})
			path := filepath.Join(*out, fmt.Sprintf("weather-%s-%d.svf", variant, m))
			if err := iolib.SaveWorkbook(path, wb); err != nil {
				fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
			if *alsoCSV && !formulas {
				cpath := filepath.Join(*out, fmt.Sprintf("weather-value-%d.csv", m))
				f, err := os.Create(cpath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
					os.Exit(1)
				}
				if err := iolib.ExportCSV(f, wb.First()); err != nil {
					fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
					os.Exit(1)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
					os.Exit(1)
				}
				fmt.Println("wrote", cpath)
			}
		}
	}
}
