package sheet

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/formula"
)

func TestSetValueClearsFormula(t *testing.T) {
	s := New("t", 3, 3)
	a := cell.MustParseAddr("B2")
	s.SetFormula(a, formula.MustCompile("=A1"))
	if _, ok := s.Formula(a); !ok {
		t.Fatal("formula missing")
	}
	s.SetValue(a, cell.Num(5))
	if _, ok := s.Formula(a); ok {
		t.Error("SetValue must clear the formula")
	}
	if s.Value(a).Num != 5 {
		t.Error("value not stored")
	}
}

func TestFormulaOriginAndDelta(t *testing.T) {
	s := New("t", 5, 5)
	code := formula.MustCompile("=A1+1")
	s.SetFormula(cell.MustParseAddr("B1"), code)
	f, _ := s.Formula(cell.MustParseAddr("B1"))
	if dr, dc := f.DeltaAt(cell.MustParseAddr("B3")); dr != 2 || dc != 0 {
		t.Errorf("DeltaAt = %d,%d", dr, dc)
	}
	// Paste keeps origin.
	s.AttachFormula(cell.MustParseAddr("C4"), f)
	g, _ := s.Formula(cell.MustParseAddr("C4"))
	if g.Origin != cell.MustParseAddr("B1") {
		t.Errorf("pasted origin = %v", g.Origin)
	}
}

func TestStyles(t *testing.T) {
	s := New("t", 2, 2)
	a := cell.MustParseAddr("A1")
	s.SetStyle(a, cell.Style{Fill: cell.Green})
	if s.Style(a).Fill != cell.Green || s.StyledCellCount() != 1 {
		t.Error("style not stored")
	}
	s.SetStyle(a, cell.Style{})
	if s.StyledCellCount() != 0 {
		t.Error("zero style should remove the entry")
	}
}

func TestHiddenRows(t *testing.T) {
	s := New("t", 5, 1)
	for r := 0; r < 5; r++ {
		s.SetValue(cell.Addr{Row: r}, cell.Num(float64(r)))
	}
	s.SetRowHidden(1, true)
	s.SetRowHidden(3, true)
	if !s.RowHidden(1) || s.RowHidden(2) {
		t.Error("hidden flags wrong")
	}
	if s.VisibleRows() != 3 {
		t.Errorf("VisibleRows = %d", s.VisibleRows())
	}
	s.UnhideAll()
	if s.VisibleRows() != 5 {
		t.Error("UnhideAll")
	}
	s.SetRowHidden(-1, true) // no panic
}

func TestApplyRowPermMovesEverything(t *testing.T) {
	s := New("t", 3, 2)
	s.SetValue(cell.MustParseAddr("A1"), cell.Num(0))
	s.SetValue(cell.MustParseAddr("A2"), cell.Num(1))
	s.SetValue(cell.MustParseAddr("A3"), cell.Num(2))
	s.SetFormula(cell.MustParseAddr("B2"), formula.MustCompile("=A2"))
	s.SetStyle(cell.MustParseAddr("B3"), cell.Style{Fill: cell.Red})
	s.SetRowHidden(2, true)

	// New row i holds old row perm[i]: reverse the sheet.
	s.ApplyRowPerm([]int{2, 1, 0})

	if s.Value(cell.MustParseAddr("A1")).Num != 2 {
		t.Error("values not permuted")
	}
	if _, ok := s.Formula(cell.MustParseAddr("B2")); !ok {
		t.Error("formula should stay on the middle row")
	}
	if s.Style(cell.MustParseAddr("B1")).Fill != cell.Red {
		t.Error("style did not move with its row")
	}
	if !s.RowHidden(0) || s.RowHidden(2) {
		t.Error("hidden marks did not move")
	}
}

func TestWorkbook(t *testing.T) {
	wb := NewWorkbook()
	if wb.First() != nil {
		t.Error("empty workbook First should be nil")
	}
	s1 := New("one", 1, 1)
	if err := wb.Add(s1); err != nil {
		t.Fatal(err)
	}
	if err := wb.Add(New("one", 1, 1)); err == nil {
		t.Error("duplicate names must fail")
	}
	if wb.Sheet("one") != s1 || wb.First() != s1 || wb.Len() != 1 {
		t.Error("lookup failed")
	}
	if got := wb.UniqueName("one"); got != "one2" {
		t.Errorf("UniqueName = %q", got)
	}
	if got := wb.UniqueName("two"); got != "two" {
		t.Errorf("UniqueName = %q", got)
	}
	if !wb.Remove("one") || wb.Len() != 0 {
		t.Error("Remove failed")
	}
	if wb.Remove("one") {
		t.Error("Remove should be false for missing sheet")
	}
}

func TestEachFormulaEarlyStop(t *testing.T) {
	s := New("t", 3, 1)
	s.SetFormula(cell.MustParseAddr("A1"), formula.MustCompile("=1"))
	s.SetFormula(cell.MustParseAddr("A2"), formula.MustCompile("=2"))
	n := 0
	s.EachFormula(func(cell.Addr, Formula) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
	if s.FormulaCount() != 2 {
		t.Error("count")
	}
	s.ClearFormula(cell.MustParseAddr("A1"))
	if s.FormulaCount() != 1 {
		t.Error("ClearFormula")
	}
}
