// Package index implements the database-style access structures whose
// absence the paper's OOT benchmark demonstrates (§5.1) and whose adoption
// §6 proposes: a per-column hash index for exact-match lookups and equality
// aggregates, a B+-tree for ordered lookups, an inverted token index for
// find-and-replace, and shared prefix sums for overlapping range
// aggregates. The optimized engine maintains these; they are also unit- and
// property-tested standalone.
package index

import "repro/internal/cell"

// key normalizes a cell value for hashing: numbers by bits, text folded to
// lower case (spreadsheet equality is case-insensitive).
type key struct {
	kind cell.Kind
	num  float64
	str  string
}

func keyOf(v cell.Value) key {
	switch v.Kind {
	case cell.Number, cell.Bool:
		return key{kind: cell.Number, num: v.Num}
	case cell.Text:
		return key{kind: cell.Text, str: foldLower(v.Str)}
	default:
		return key{kind: v.Kind, str: v.Str}
	}
}

func foldLower(s string) string {
	needs := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// Hash is an equality index over one column: value -> sorted list of rows.
// It answers point lookups (VLOOKUP exact match) and equality counts
// (COUNTIF with an equality criterion) in near-constant time, the
// complexity the paper's §5.1 take-away calls for.
type Hash struct {
	rows map[key][]int32
	n    int
}

// NewHash returns an empty hash index.
func NewHash() *Hash { return &Hash{rows: make(map[key][]int32)} }

// Add indexes the value at the given row.
func (h *Hash) Add(row int, v cell.Value) {
	if v.IsEmpty() {
		return
	}
	k := keyOf(v)
	h.rows[k] = insertSorted(h.rows[k], int32(row))
	h.n++
}

// Remove drops the (row, value) pairing; it is a no-op when absent.
func (h *Hash) Remove(row int, v cell.Value) {
	if v.IsEmpty() {
		return
	}
	k := keyOf(v)
	s := h.rows[k]
	i := searchInt32(s, int32(row))
	if i < len(s) && s[i] == int32(row) {
		h.rows[k] = append(s[:i], s[i+1:]...)
		h.n--
		if len(h.rows[k]) == 0 {
			delete(h.rows, k)
		}
	}
}

// Replace updates the index for a single cell edit.
func (h *Hash) Replace(row int, old, new cell.Value) {
	h.Remove(row, old)
	h.Add(row, new)
}

// FirstRow returns the smallest indexed row in [lo, hi] holding v. probes
// counts hash+list probes for metering.
func (h *Hash) FirstRow(v cell.Value, lo, hi int) (row, probes int, ok bool) {
	s := h.rows[keyOf(v)]
	i := searchInt32(s, int32(lo))
	probes = 2 // hash probe + binary-search landing
	if i < len(s) && int(s[i]) <= hi {
		return int(s[i]), probes, true
	}
	return 0, probes, false
}

// Count returns the number of indexed rows in [lo, hi] holding v.
func (h *Hash) Count(v cell.Value, lo, hi int) (count, probes int) {
	s := h.rows[keyOf(v)]
	i := searchInt32(s, int32(lo))
	j := searchInt32(s, int32(hi+1))
	return j - i, 3
}

// Len returns the number of indexed (row, value) entries.
func (h *Hash) Len() int { return h.n }

// DistinctValues returns the number of distinct indexed values.
func (h *Hash) DistinctValues() int { return len(h.rows) }

func insertSorted(s []int32, x int32) []int32 {
	i := searchInt32(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// searchInt32 returns the first index with s[i] >= x.
func searchInt32(s []int32, x int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
