// Package floatbad holds one flagged comparison per function; the floatcmp
// test asserts the count.
package floatbad

import "math"

type point struct {
	Num float64
	n   int
}

// paramCompare: both sides are float64 parameters.
func paramCompare(a, b float64) bool { return a == b }

// fieldCompare: the right side names a float64 struct field.
func fieldCompare(p point, x float64) bool { return x != p.Num }

// literalCompare: a float literal forces the other side float.
func literalCompare(x float64) bool { return x == 0.5 }

// mathCompare: math.* call results are float64.
func mathCompare(x float64) bool { return math.Abs(x) == x }

// derivedCompare: arithmetic over floats and locals bound from floats.
func derivedCompare(a, b float64) bool {
	d := a - b
	return d != b*2
}

// resultCompare: a package function returning float64 resolves.
func resultCompare(a float64) bool { return half(a) == a }

// rangeCompare: elements of a ranged []float64 resolve.
func rangeCompare(xs []float64, x float64) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// multiResultCompare: multi-value assignment from a package function.
func multiResultCompare(a float64) bool {
	f, ok := parse(a)
	return ok && f == a
}

func half(x float64) float64 { return x / 2 }

func parse(x float64) (float64, bool) { return x, true }
