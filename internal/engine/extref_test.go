package engine

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/sheet"
)

// extWorkbook builds a three-sheet workbook with a cross-sheet dependency
// chain: summary reads accounts (SUMIF, VLOOKUP, direct refs) and report
// reads summary, so changes must propagate across two sheet boundaries.
func extWorkbook(t *testing.T) *sheet.Workbook {
	t.Helper()
	wb := sheet.NewWorkbook()

	accounts := sheet.New("accounts", 6, 3)
	accounts.SetValue(cell.MustParseAddr("A1"), cell.Str("name"))
	accounts.SetValue(cell.MustParseAddr("B1"), cell.Str("kind"))
	accounts.SetValue(cell.MustParseAddr("C1"), cell.Str("amount"))
	rows := []struct {
		name, kind string
		amount     float64
	}{
		{"cash", "asset", 100},
		{"inventory", "asset", 250},
		{"loan", "debt", 400},
		{"bonds", "debt", 50},
		{"goodwill", "asset", 25},
	}
	for i, r := range rows {
		accounts.SetValue(cell.Addr{Row: i + 1, Col: 0}, cell.Str(r.name))
		accounts.SetValue(cell.Addr{Row: i + 1, Col: 1}, cell.Str(r.kind))
		accounts.SetValue(cell.Addr{Row: i + 1, Col: 2}, cell.Num(r.amount))
	}
	if err := wb.Add(accounts); err != nil {
		t.Fatal(err)
	}

	summary := sheet.New("summary", 4, 2)
	mustFormula := func(s *sheet.Sheet, a1, text string) {
		s.SetFormula(cell.MustParseAddr(a1), formula.MustCompile(text))
	}
	mustFormula(summary, "A1", `=SUMIF(accounts!B2:B6,"asset",accounts!C2:C6)`)
	mustFormula(summary, "A2", `=SUMIF(accounts!B2:B6,"debt",accounts!C2:C6)`)
	mustFormula(summary, "A3", `=VLOOKUP("loan",accounts!A2:C6,3,FALSE)`)
	mustFormula(summary, "B1", "=A1+A2")
	if err := wb.Add(summary); err != nil {
		t.Fatal(err)
	}

	report := sheet.New("report", 2, 2)
	mustFormula(report, "A1", "=summary!B1*2")
	if err := wb.Add(report); err != nil {
		t.Fatal(err)
	}
	return wb
}

// TestCrossSheetPropagation drives every profile through the same foreign
// edits and checks both absolute correctness and cross-profile agreement.
func TestCrossSheetPropagation(t *testing.T) {
	for _, sys := range []string{"excel", "calc", "sheets", "optimized"} {
		t.Run(sys, func(t *testing.T) {
			eng := New(Profiles()[sys])
			wb := extWorkbook(t)
			if err := eng.Install(wb); err != nil {
				t.Fatal(err)
			}
			accounts := wb.Sheet("accounts")
			summary := wb.Sheet("summary")
			report := wb.Sheet("report")

			read := func(s *sheet.Sheet, a1 string) cell.Value {
				return s.Value(cell.MustParseAddr(a1))
			}
			// Install settles the fixpoint: 100+250+25 assets, 400+50 debt.
			if got := read(summary, "A1"); got != cell.Num(375) {
				t.Fatalf("assets after install = %v, want 375", got)
			}
			if got := read(report, "A1"); got != cell.Num(1650) {
				t.Fatalf("report after install = %v, want (375+450)*2", got)
			}

			// A foreign edit must ripple accounts -> summary -> report.
			if _, err := eng.SetCell(accounts, cell.MustParseAddr("C2"), cell.Num(200)); err != nil {
				t.Fatal(err)
			}
			if got := read(summary, "A1"); got != cell.Num(475) {
				t.Fatalf("assets after edit = %v, want 475", got)
			}
			if got := read(summary, "B1"); got != cell.Num(925) {
				t.Fatalf("total after edit = %v, want 925", got)
			}
			if got := read(report, "A1"); got != cell.Num(1850) {
				t.Fatalf("report after edit = %v, want 1850", got)
			}

			// Re-keying a row changes the VLOOKUP result.
			if _, _, err := eng.FindReplace(accounts, "loan", "mortgage"); err != nil {
				t.Fatal(err)
			}
			if got := read(summary, "A3"); !got.IsError() {
				t.Fatalf("lookup of renamed key = %v, want #N/A-class error", got)
			}

			// Sorting the foreign sheet permutes rows without changing the
			// aggregate answers.
			if _, err := eng.Sort(accounts, 2, true, 1); err != nil {
				t.Fatal(err)
			}
			if got := read(summary, "A1"); got != cell.Num(475) {
				t.Fatalf("assets after foreign sort = %v, want 475", got)
			}
		})
	}
}

// TestCrossSheetProfilesAgree compares full workbook state across profiles
// after a mixed op sequence touching both sides of the sheet boundary.
func TestCrossSheetProfilesAgree(t *testing.T) {
	systems := []string{"excel", "calc", "sheets", "optimized"}
	books := make([]*sheet.Workbook, len(systems))
	for i, sys := range systems {
		eng := New(Profiles()[sys])
		wb := extWorkbook(t)
		if err := eng.Install(wb); err != nil {
			t.Fatal(err)
		}
		accounts := wb.Sheet("accounts")
		summary := wb.Sheet("summary")
		if _, err := eng.SetCell(accounts, cell.MustParseAddr("C4"), cell.Num(999)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.InsertFormula(summary, cell.MustParseAddr("B2"),
			`=COUNTIF(accounts!B2:B6,"debt")`); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Sort(accounts, 2, false, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.SetCell(accounts, cell.MustParseAddr("B2"), cell.Str("debt")); err != nil {
			t.Fatal(err)
		}
		books[i] = wb
	}
	ref := books[0]
	for i := 1; i < len(books); i++ {
		got := books[i]
		for _, rs := range ref.Sheets() {
			gs := got.Sheet(rs.Name)
			if gs == nil {
				t.Fatalf("%s: missing sheet %q", systems[i], rs.Name)
			}
			for r := 0; r < rs.Rows(); r++ {
				for c := 0; c < rs.Cols(); c++ {
					at := cell.Addr{Row: r, Col: c}
					if rs.Value(at) != gs.Value(at) {
						t.Errorf("%s: %s!%s = %+v, excel has %+v",
							systems[i], rs.Name, at, gs.Value(at), rs.Value(at))
					}
				}
			}
		}
	}
}

// TestCrossSheetFingerprintCacheExcluded: under RedundantElimination a
// cross-sheet formula must never be served from the fingerprint cache —
// the foreign sheet can change without bumping the host's version.
func TestCrossSheetFingerprintCacheExcluded(t *testing.T) {
	eng := New(Profiles()["optimized"])
	wb := extWorkbook(t)
	if err := eng.Install(wb); err != nil {
		t.Fatal(err)
	}
	accounts := wb.Sheet("accounts")
	summary := wb.Sheet("summary")

	const text = "=accounts!C2*10"
	v1, _, err := eng.InsertFormula(summary, cell.MustParseAddr("B3"), text)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != cell.Num(1000) {
		t.Fatalf("first insert = %v, want 1000", v1)
	}
	// Change the foreign precedent: the host sheet's own version is
	// untouched, so a cached fingerprint would serve the stale 1000.
	if _, err := eng.SetCell(accounts, cell.MustParseAddr("C2"), cell.Num(7)); err != nil {
		t.Fatal(err)
	}
	v2, _, err := eng.InsertFormula(summary, cell.MustParseAddr("B4"), text)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != cell.Num(70) {
		t.Fatalf("re-insert after foreign edit = %v, want 70 (stale cache hit?)", v2)
	}
}
