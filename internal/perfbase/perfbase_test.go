package perfbase

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func bench(name string, ns, allocs float64, samples int) obs.BenchResult {
	return obs.BenchResult{Name: name, Iterations: 10, NsPerOp: ns,
		AllocsPerOp: allocs, Samples: samples}
}

func benchFile(rs ...obs.BenchResult) *obs.BenchFile {
	return &obs.BenchFile{Schema: obs.BenchSchema, Benchmarks: rs}
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := benchFile(
		bench("BenchmarkRecalc/weather", 125000, 42, 3),
		bench("BenchmarkLookup/ledger", 9000, 7, 3),
	)
	d := Compare(base, base, Options{AllocsExact: true})
	if d.HasRegressions() {
		t.Fatalf("identical baseline flagged regressions: %+v", d.Regressions)
	}
	if len(d.OK) != 2 || len(d.New) != 0 || len(d.Missing) != 0 {
		t.Fatalf("want 2 ok rows, got ok=%d new=%d missing=%d", len(d.OK), len(d.New), len(d.Missing))
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	base := benchFile(bench("BenchmarkRecalc/weather", 100000, 42, 3))
	cand := benchFile(bench("BenchmarkRecalc/weather", 125000, 42, 3)) // +25%
	d := Compare(base, cand, Options{NsThreshold: 0.20, AllocsExact: true})
	if !d.HasRegressions() {
		t.Fatal("25% slowdown over a 20% threshold not flagged")
	}
	r := d.Regressions[0]
	if r.Verdict != VerdictRegression {
		t.Fatalf("verdict %q, want %q", r.Verdict, VerdictRegression)
	}
	if r.RelDelta < 0.24 || r.RelDelta > 0.26 {
		t.Fatalf("rel delta %v, want ~0.25", r.RelDelta)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := benchFile(bench("BenchmarkRecalc/weather", 100000, 42, 3))
	cand := benchFile(bench("BenchmarkRecalc/weather", 115000, 42, 3)) // +15%
	d := Compare(base, cand, Options{NsThreshold: 0.20, AllocsExact: true})
	if d.HasRegressions() {
		t.Fatalf("15%% drift under a 20%% threshold flagged: %+v", d.Regressions)
	}
}

func TestCompareNoiseFloorSuppresses(t *testing.T) {
	// 40 -> 90 ns is +125% but both sit under the 100ns floor: harness
	// overhead territory, not a regression.
	base := benchFile(bench("BenchmarkTiny", 40, 0, 3))
	cand := benchFile(bench("BenchmarkTiny", 90, 0, 3))
	d := Compare(base, cand, Options{AllocsExact: true})
	if d.HasRegressions() {
		t.Fatalf("sub-floor timing change flagged: %+v", d.Regressions)
	}
	// Once the candidate clears the floor the threshold applies again.
	cand2 := benchFile(bench("BenchmarkTiny", 400, 0, 3))
	if d2 := Compare(base, cand2, Options{AllocsExact: true}); !d2.HasRegressions() {
		t.Fatal("above-floor 10x slowdown not flagged")
	}
}

func TestCompareAllocsExact(t *testing.T) {
	base := benchFile(bench("BenchmarkRecalc/weather", 100000, 42, 3))
	cand := benchFile(bench("BenchmarkRecalc/weather", 100000, 43, 3))
	d := Compare(base, cand, Options{AllocsExact: true})
	if !d.HasRegressions() || d.Regressions[0].Verdict != VerdictAllocs {
		t.Fatalf("single-alloc increase not flagged as %s: %+v", VerdictAllocs, d)
	}
	// Allocation decreases are fine.
	cand2 := benchFile(bench("BenchmarkRecalc/weather", 100000, 41, 3))
	if d2 := Compare(base, cand2, Options{AllocsExact: true}); d2.HasRegressions() {
		t.Fatalf("alloc decrease flagged: %+v", d2.Regressions)
	}
	// And without AllocsExact the increase passes.
	if d3 := Compare(base, cand, Options{}); d3.HasRegressions() {
		t.Fatalf("alloc increase flagged with AllocsExact off: %+v", d3.Regressions)
	}
}

// TestCompareAllocsSlack: single-iteration smoke runs wobble a
// many-thousand-alloc benchmark by a handful of allocations (map-growth
// timing); a 1% slack absorbs that while still catching per-row leaks.
func TestCompareAllocsSlack(t *testing.T) {
	opt := Options{AllocsExact: true, AllocsSlack: 0.01}
	base := benchFile(bench("BenchmarkPlan/ledger", 20_000_000, 10890, 1))
	wobble := benchFile(bench("BenchmarkPlan/ledger", 20_000_000, 10896, 1))
	if d := Compare(base, wobble, opt); d.HasRegressions() {
		t.Fatalf("within-slack wobble flagged: %+v", d.Regressions)
	}
	leak := benchFile(bench("BenchmarkPlan/ledger", 20_000_000, 12000, 1))
	d := Compare(base, leak, opt)
	if !d.HasRegressions() || d.Regressions[0].Verdict != VerdictAllocs {
		t.Fatalf("10%% alloc growth not flagged: %+v", d)
	}
	// A zero-alloc baseline gets no slack headroom: any allocation is new.
	zbase := benchFile(bench("BenchmarkGridScan", 100000, 0, 1))
	zcand := benchFile(bench("BenchmarkGridScan", 100000, 1, 1))
	if d := Compare(zbase, zcand, opt); !d.HasRegressions() {
		t.Fatal("first allocation on a zero-alloc benchmark not flagged")
	}
}

func TestCompareNewAndMissing(t *testing.T) {
	base := benchFile(bench("BenchmarkOld", 1000, 1, 3))
	cand := benchFile(bench("BenchmarkNew", 1000, 1, 3))
	d := Compare(base, cand, Options{AllocsExact: true})
	if d.HasRegressions() {
		t.Fatalf("set difference treated as regression: %+v", d.Regressions)
	}
	if len(d.New) != 1 || d.New[0].Name != "BenchmarkNew" {
		t.Fatalf("new rows: %+v", d.New)
	}
	if len(d.Missing) != 1 || d.Missing[0].Name != "BenchmarkOld" {
		t.Fatalf("missing rows: %+v", d.Missing)
	}
}

func TestCompareRankingAndTableDeterminism(t *testing.T) {
	base := benchFile(
		bench("BenchmarkA", 1000, 5, 3),
		bench("BenchmarkB", 1000, 5, 3),
		bench("BenchmarkC", 1000, 5, 3),
		bench("BenchmarkD", 1000, 5, 3),
	)
	cand := benchFile(
		bench("BenchmarkD", 1400, 5, 3), // +40%
		bench("BenchmarkB", 1300, 5, 3), // +30%
		bench("BenchmarkC", 1000, 6, 3), // allocs
		bench("BenchmarkA", 500, 5, 3),  // -50%
	)
	opt := Options{AllocsExact: true}
	d := Compare(base, cand, opt)
	got := make([]string, 0, len(d.Regressions))
	for _, r := range d.Regressions {
		got = append(got, r.Name)
	}
	// Allocs regressions lead (the certain kind), then timing worst-first.
	want := []string{"BenchmarkC", "BenchmarkD", "BenchmarkB"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("regression ranking %v, want %v", got, want)
	}
	if len(d.Improvements) != 1 || d.Improvements[0].Name != "BenchmarkA" {
		t.Fatalf("improvements: %+v", d.Improvements)
	}
	var one, two bytes.Buffer
	if err := d.WriteTable(&one, opt); err != nil {
		t.Fatal(err)
	}
	if err := Compare(base, cand, opt).WriteTable(&two, opt); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("table not deterministic:\n%s\nvs\n%s", one.String(), two.String())
	}
	if !strings.Contains(one.String(), "FAIL (3 regression(s))") {
		t.Fatalf("table missing FAIL verdict:\n%s", one.String())
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	first := HistoryEntry{UnixTime: 1754000000, Label: "seed",
		Bench: *benchFile(bench("BenchmarkRecalc/weather", 100000, 42, 3))}
	second := HistoryEntry{UnixTime: 1754100000, Label: "tuned",
		Bench: *benchFile(bench("BenchmarkRecalc/weather", 90000, 42, 3))}
	if err := AppendHistory(path, first); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, second); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := ReadHistory(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if entries[0].Label != "seed" || entries[1].Label != "tuned" {
		t.Fatalf("labels: %q, %q", entries[0].Label, entries[1].Label)
	}
	if entries[0].Schema != HistorySchema {
		t.Fatalf("schema %q, want %q", entries[0].Schema, HistorySchema)
	}
	if ns := entries[1].Bench.Benchmarks[0].NsPerOp; ns != 90000 {
		t.Fatalf("second entry ns %v, want 90000", ns)
	}
}

func TestHistoryRejectsMixedSchemas(t *testing.T) {
	good := `{"schema":"spreadbench-perfbase/v1","unix_time":1,"bench":{"schema":"` +
		obs.BenchSchema + `","benchmarks":[]}}`
	bad := `{"schema":"spreadbench-perfbase/v0","unix_time":2,"bench":{"schema":"` +
		obs.BenchSchema + `","benchmarks":[]}}`
	_, err := ReadHistory(strings.NewReader(good + "\n" + bad + "\n"))
	if err == nil {
		t.Fatal("mixed-schema history accepted")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "mixed-schema") {
		t.Fatalf("error should name the bad line and the mixed-schema cause: %v", err)
	}
}

func TestHistoryRejectsUnknownFields(t *testing.T) {
	line := `{"schema":"spreadbench-perfbase/v1","unix_time":1,"surprise":true,"bench":{"schema":"` +
		obs.BenchSchema + `","benchmarks":[]}}`
	_, err := ReadHistory(strings.NewReader(line))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestHistoryRejectsGarbageLine(t *testing.T) {
	_, err := ReadHistory(strings.NewReader("not json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("garbage line accepted: %v", err)
	}
}
