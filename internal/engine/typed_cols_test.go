package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cell"
	"repro/internal/sheet"
	"repro/internal/workload"
)

// typedColsClock pins NOW() so the analysis block's volatile cell (S5)
// compares equal across engines installed at different wall times.
func typedColsClock() time.Time {
	return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
}

// typedColsCompare asserts two sheets display byte-identical values in
// every cell, including the analysis block columns past NumCols.
func typedColsCompare(t *testing.T, label string, ref, got *sheet.Sheet) {
	t.Helper()
	if got.Rows() != ref.Rows() {
		t.Fatalf("%s: rows %d != %d", label, got.Rows(), ref.Rows())
	}
	for r := 0; r < ref.Rows(); r++ {
		for c := 0; c < ref.Cols()+2; c++ {
			at := cell.Addr{Row: r, Col: c}
			if !ref.Value(at).Equal(got.Value(at)) {
				t.Fatalf("%s: differs at %s: naive %+v vs typed %+v",
					label, at, ref.Value(at), got.Value(at))
			}
		}
	}
}

// TestTypedColumnsDifferential is the acceptance gate for the TypedColumns
// optimization: for every weather workbook size in the standard matrix, the
// optimized engine — consuming the type checker's numeric column
// certificates at install — must produce results byte-identical to the
// naive engine. Certificates may only change WHERE values are read from,
// never WHAT they are.
func TestTypedColumnsDifferential(t *testing.T) {
	if !Profiles()["optimized"].Opt.TypedColumns {
		t.Fatal("optimized profile does not enable TypedColumns")
	}
	for _, rows := range workload.SizesUpTo(25000) {
		t.Run(fmt.Sprintf("rows=%d", rows), func(t *testing.T) {
			naive := New(Profiles()["excel"])
			opt := New(Profiles()["optimized"])
			naive.SetNow(typedColsClock)
			opt.SetNow(typedColsClock)
			wbN := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true, Analysis: true})
			wbO := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true, Analysis: true,
				Columnar: Profiles()["optimized"].Opt.ColumnarLayout})
			if err := naive.Install(wbN); err != nil {
				t.Fatal(err)
			}
			if err := opt.Install(wbO); err != nil {
				t.Fatal(err)
			}
			typedColsCompare(t, "post-install", wbN.First(), wbO.First())
		})
	}
}

// TestTypedColumnsInvalidation drives edits that violate the certificates
// and checks the optimized engine notices: a text write into a certified
// numeric column, a formula inserted into one, and a sort (which rebuilds
// all optimizer state). After each, fresh aggregates over the touched
// column must still match the naive engine exactly.
func TestTypedColumnsInvalidation(t *testing.T) {
	const rows = 200
	naive := New(Profiles()["excel"])
	opt := New(Profiles()["optimized"])
	naive.SetNow(typedColsClock)
	opt.SetNow(typedColsClock)
	wbN := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true, Analysis: true})
	wbO := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true, Analysis: true,
		Columnar: Profiles()["optimized"].Opt.ColumnarLayout})
	if err := naive.Install(wbN); err != nil {
		t.Fatal(err)
	}
	if err := opt.Install(wbO); err != nil {
		t.Fatal(err)
	}
	sN, sO := wbN.First(), wbO.First()

	both := func(label string, f func(e *Engine, s *sheet.Sheet) error) {
		t.Helper()
		if err := f(naive, sN); err != nil {
			t.Fatalf("%s (naive): %v", label, err)
		}
		if err := f(opt, sO); err != nil {
			t.Fatalf("%s (typed): %v", label, err)
		}
		typedColsCompare(t, label, sN, sO)
	}

	// A text value lands in certified column A (id): the certificate must
	// drop, and a subsequent aggregate over A must see the text cell.
	both("text into id column", func(e *Engine, s *sheet.Sheet) error {
		_, err := e.SetCell(s, cell.Addr{Row: 5, Col: workload.ColID}, cell.Str("oops"))
		return err
	})
	both("sum over poisoned column", func(e *Engine, s *sheet.Sheet) error {
		_, _, err := e.InsertFormula(s, cell.Addr{Row: 1, Col: workload.NumCols + 2},
			fmt.Sprintf("=SUM(A2:A%d)", rows+1))
		return err
	})

	// A formula inserted into certified column J (storm): noteFormulaResult
	// must de-certify J before the formula's cached result is aggregated.
	both("formula into storm column", func(e *Engine, s *sheet.Sheet) error {
		_, _, err := e.InsertFormula(s, cell.Addr{Row: 8, Col: workload.ColStorm}, "=1-0")
		return err
	})
	both("countif over formula-bearing column", func(e *Engine, s *sheet.Sheet) error {
		_, _, err := e.InsertFormula(s, cell.Addr{Row: 2, Col: workload.NumCols + 2},
			fmt.Sprintf(`=COUNTIF(J2:J%d,"1")`, rows+1))
		return err
	})

	// Sorting reorders whole rows; rebuildAfterReorder clears every
	// certificate, so post-sort aggregates rebuild from scratch.
	both("sort by state", func(e *Engine, s *sheet.Sheet) error {
		_, err := e.Sort(s, workload.ColState, true, 1)
		return err
	})
	both("sum after sort", func(e *Engine, s *sheet.Sheet) error {
		_, _, err := e.InsertFormula(s, cell.Addr{Row: 3, Col: workload.NumCols + 2},
			fmt.Sprintf("=SUM(A2:A%d)", rows+1))
		return err
	})
}
