// The floatcmp analyzer: exact `==` / `!=` on float64 values is almost
// always a bug in numeric code — results that differ in the last ulp
// compare unequal and golden files stop reproducing. Spreadsheet dialects
// DO define exact numeric equality in a few places (COUNTIF criteria,
// RANK), so those comparisons must route through a named, allowlisted
// helper (numEq) instead of inline operators.
//
// Type resolution is syntactic, like rangemap's: an expression is float64
// if it is a float literal, a float64(...) conversion, a math.* call, an
// identifier bound to a float64 parameter/result/declaration, a call of a
// package function returning float64, a selector naming a float64 struct
// field declared in the package (plus the repo-wide cell.Value.Num), the
// element of a ranged []float64, or arithmetic over any of those.
// Comparisons against integer literals (`y == 0`, `base == 1`) are exact
// sentinel guards and are allowed.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// FloatCmp is the float-equality analyzer. Its default gate covers the
// numeric kernels.
var FloatCmp = &Analyzer{
	Name:        "floatcmp",
	Doc:         "exact == / != on float64 outside allowlisted helpers",
	DefaultDirs: []string{"internal/formula", "internal/stats", "internal/obs", "internal/perfbase"},
	Run:         runFloatCmp,
}

// floatCmpAllow names the functions allowed to compare floats exactly:
// the audited equality helpers the rest of the code must call.
var floatCmpAllow = map[string]bool{"numEq": true}

func runFloatCmp(pkg *Package) []Diagnostic {
	res := newFloatResolver(pkg.Files)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || floatCmpAllow[fd.Name.Name] {
				continue
			}
			vars := res.collectFloatVars(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isIntLit(be.X) || isIntLit(be.Y) {
					return true // exact sentinel guard, intentional
				}
				if res.isFloat(be.X, vars) || res.isFloat(be.Y, vars) {
					diags = append(diags, Diagnostic{
						Pos: pkg.Fset.Position(be.OpPos).String(),
						Message: fmt.Sprintf(
							"exact %s on float64; use an allowlisted helper (numEq) or an epsilon compare", be.Op),
					})
				}
				return true
			})
		}
	}
	return sortDiags(diags)
}

// floatResolver holds the package-level syntactic type facts.
type floatResolver struct {
	// fields names float64 struct fields declared in the package, seeded
	// with "Num" (cell.Value's float payload, referenced repo-wide).
	fields map[string]bool
	// funcs maps package function names to their result types: "f" for
	// float64, "s" for []float64, "?" for anything else.
	funcs map[string][]byte
}

func isFloat64Type(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "float64"
}

func isFloatSliceType(e ast.Expr) bool {
	at, ok := e.(*ast.ArrayType)
	return ok && at.Len == nil && isFloat64Type(at.Elt)
}

func newFloatResolver(files []*ast.File) *floatResolver {
	res := &floatResolver{
		fields: map[string]bool{"Num": true},
		funcs:  make(map[string][]byte),
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.StructType:
				for _, fl := range t.Fields.List {
					if !isFloat64Type(fl.Type) {
						continue
					}
					for _, name := range fl.Names {
						res.fields[name.Name] = true
					}
				}
			case *ast.FuncDecl:
				if t.Recv != nil || t.Type.Results == nil {
					return true
				}
				var sig []byte
				for _, r := range t.Type.Results.List {
					k := byte('?')
					if isFloat64Type(r.Type) {
						k = 'f'
					} else if isFloatSliceType(r.Type) {
						k = 's'
					}
					reps := 1
					if len(r.Names) > 1 {
						reps = len(r.Names)
					}
					for i := 0; i < reps; i++ {
						sig = append(sig, k)
					}
				}
				res.funcs[t.Name.Name] = sig
			}
			return true
		})
	}
	return res
}

// collectFloatVars resolves the identifiers one function binds to float64
// ('f') or []float64 ('s') values: typed parameters/results/declarations,
// assignments from float expressions or package-function results, and
// range statements over float slices.
func (res *floatResolver) collectFloatVars(fd *ast.FuncDecl) map[string]byte {
	vars := make(map[string]byte)
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			k := byte(0)
			if isFloat64Type(f.Type) {
				k = 'f'
			} else if isFloatSliceType(f.Type) {
				k = 's'
			}
			if k == 0 {
				continue
			}
			for _, name := range f.Names {
				vars[name.Name] = k
			}
		}
	}
	addFieldList(fd.Type.Params)
	addFieldList(fd.Type.Results)
	if fd.Recv != nil {
		addFieldList(fd.Recv)
	}

	// Two passes so `y := x` resolves when x is bound after y lexically
	// never happens in practice, but cheap to be safe.
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.AssignStmt:
				res.bindAssign(t, vars)
			case *ast.ValueSpec:
				if isFloat64Type(t.Type) {
					for _, name := range t.Names {
						vars[name.Name] = 'f'
					}
				} else if isFloatSliceType(t.Type) {
					for _, name := range t.Names {
						vars[name.Name] = 's'
					}
				}
				for i, name := range t.Names {
					if i < len(t.Values) && res.isFloat(t.Values[i], vars) {
						vars[name.Name] = 'f'
					}
				}
			case *ast.RangeStmt:
				if id, ok := t.Value.(*ast.Ident); ok && res.sliceKind(t.X, vars) {
					vars[id.Name] = 'f'
				}
			}
			return true
		})
	}
	return vars
}

// bindAssign propagates float kinds through := and = assignments,
// including multi-value assignment from a package function call.
func (res *floatResolver) bindAssign(as *ast.AssignStmt, vars map[string]byte) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if res.isFloat(as.Rhs[i], vars) {
				vars[id.Name] = 'f'
			} else if res.sliceKind(as.Rhs[i], vars) {
				vars[id.Name] = 's'
			}
		}
		return
	}
	// Multi-value: a, b := fn(...) with fn declared in the package.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	sig, ok := res.funcs[fn.Name]
	if !ok || len(sig) != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && sig[i] != '?' {
			vars[id.Name] = sig[i]
		}
	}
}

// sliceKind reports whether an expression is a []float64 under the
// resolver.
func (res *floatResolver) sliceKind(e ast.Expr, vars map[string]byte) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return vars[t.Name] == 's'
	case *ast.CallExpr:
		if fn, ok := t.Fun.(*ast.Ident); ok {
			sig := res.funcs[fn.Name]
			return len(sig) == 1 && sig[0] == 's'
		}
	}
	return false
}

// isFloat reports whether an expression is syntactically float64.
func (res *floatResolver) isFloat(e ast.Expr, vars map[string]byte) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return vars[t.Name] == 'f'
	case *ast.BasicLit:
		return t.Kind == token.FLOAT
	case *ast.SelectorExpr:
		return res.fields[t.Sel.Name]
	case *ast.ParenExpr:
		return res.isFloat(t.X, vars)
	case *ast.UnaryExpr:
		return t.Op == token.SUB && res.isFloat(t.X, vars)
	case *ast.IndexExpr:
		return res.sliceKind(t.X, vars)
	case *ast.BinaryExpr:
		switch t.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return res.isFloat(t.X, vars) || res.isFloat(t.Y, vars)
		}
		return false
	case *ast.CallExpr:
		switch fn := t.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "float64" {
				return true
			}
			sig := res.funcs[fn.Name]
			return len(sig) == 1 && sig[0] == 'f'
		case *ast.SelectorExpr:
			if x, ok := fn.X.(*ast.Ident); ok && x.Name == "math" {
				return !strings.HasPrefix(fn.Sel.Name, "Is") // IsNaN/IsInf return bool
			}
		}
	}
	return false
}

// isIntLit reports whether an expression is an integer literal (possibly
// negated) — the exact sentinel comparisons the check deliberately allows.
func isIntLit(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.SUB {
		return isIntLit(u.X)
	}
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Kind == token.INT
}
