// Package core implements the benchmark itself: the operation taxonomy of
// Table 1, the BCT experiments (§4, Figures 2–8, Table 2), the OOT
// experiments (§5, Figures 9–14), the trial protocol, and the derived
// interactivity analysis.
package core

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// InteractivityBound is the 500 ms threshold for interactive response the
// paper adopts from Liu & Heer [31].
const InteractivityBound = 500 * time.Millisecond

// Scalability limits used by Table 2 (§4.4): one million rows for the
// desktop systems, five million cells for the web system.
const (
	DesktopRowLimit = 1_000_000
	WebCellLimit    = 5_000_000
)

// Config controls a benchmark run.
type Config struct {
	// Systems lists the profiles to benchmark; default excel, calc,
	// sheets.
	Systems []string
	// Trials per measurement; the paper uses 10 (§3.3), the quick default
	// is 5.
	Trials int
	// MaxRows caps the sweep sizes for the desktop systems; the paper's
	// full sweep reaches 500k.
	MaxRows int
	// MaxRowsWeb caps the web system's sweep (paper: 90k, quota-bound).
	MaxRowsWeb int
	// Seed drives dataset generation and the network jitter stream.
	Seed uint64
	// TempDir receives the workbook files of the open experiment;
	// defaults to os.TempDir().
	TempDir string
	// Full selects the paper's exact sweep parameters where the quick
	// defaults use scaled-down ones (fig10 access counts, fig11 formula
	// counts).
	Full bool
	// Progress, when non-nil, receives one line per completed series.
	Progress func(format string, args ...any)
}

// DefaultConfig returns the quick configuration: paper-shaped sweeps at
// sizes that complete in minutes on a laptop.
func DefaultConfig() *Config {
	return &Config{
		Systems:    []string{"excel", "calc", "sheets"},
		Trials:     5,
		MaxRows:    50_000,
		MaxRowsWeb: 30_000,
		Seed:       workload.DefaultSeed,
	}
}

// PaperConfig returns the paper's full experimental parameters (§3.3).
// Expect multi-hour wall times on the desktop-class sizes.
func PaperConfig() *Config {
	return &Config{
		Systems:    []string{"excel", "calc", "sheets"},
		Trials:     10,
		MaxRows:    500_000,
		MaxRowsWeb: 90_000,
		Seed:       workload.DefaultSeed,
		Full:       true,
	}
}

func (cfg *Config) systems() []string {
	if len(cfg.Systems) == 0 {
		return []string{"excel", "calc", "sheets"}
	}
	return cfg.Systems
}

func (cfg *Config) trials() int {
	if cfg.Trials <= 0 {
		return 5
	}
	return cfg.Trials
}

func (cfg *Config) seed() uint64 {
	if cfg.Seed == 0 {
		return workload.DefaultSeed
	}
	return cfg.Seed
}

func (cfg *Config) progress(format string, args ...any) {
	if cfg.Progress != nil {
		cfg.Progress(format, args...)
	}
}

// newEngine constructs an engine for a named profile.
func newEngine(name string) (*engine.Engine, error) {
	prof, ok := engine.Profiles()[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown system profile %q", name)
	}
	return engine.New(prof), nil
}

// isWeb reports whether the named profile is web-based.
func isWeb(name string) bool { return name == "sheets" }

// sizesFor returns the sweep row counts for one system under an optional
// experiment-specific cap (0 = none); web systems are additionally bound by
// MaxRowsWeb (§3.3 quota truncation).
func (cfg *Config) sizesFor(system string, capRows int) []int {
	max := cfg.MaxRows
	if max <= 0 {
		max = 50_000
	}
	if isWeb(system) {
		max = cfg.MaxRowsWeb
		if max <= 0 {
			max = 30_000
		}
	}
	if capRows > 0 && capRows < max {
		max = capRows
	}
	return workload.SizesUpTo(max)
}

// maxSizeFor returns the largest sweep size for the system.
func (cfg *Config) maxSizeFor(system string, capRows int) int {
	sizes := cfg.sizesFor(system, capRows)
	if len(sizes) == 0 {
		return 0
	}
	return sizes[len(sizes)-1]
}

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier from DESIGN.md §3 (e.g.
	// "fig7-countif").
	ID string
	// Title describes the reproduced artifact.
	Title string
	// Series holds the labeled latency curves.
	Series []report.Series
	// Notes records caveats (truncations, substitutions) for the report.
	Notes []string
}

func newResult(id, title string) *Result { return &Result{ID: id, Title: title} }

func (r *Result) addSeries(label string, pts []report.Point) {
	r.Series = append(r.Series, report.Series{Label: label, Points: pts})
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// findSeries returns the series with the label, or nil.
func (r *Result) findSeries(label string) *report.Series {
	for i := range r.Series {
		if r.Series[i].Label == label {
			return &r.Series[i]
		}
	}
	return nil
}

// trial is one measured execution: the simulated and wall latency of the
// operation under test.
type trial struct {
	sim  time.Duration
	wall time.Duration
}

// runTrials executes the operation cfg.trials() times, with an optional
// unmetered reset between trials, and aggregates per the paper's protocol
// (trimmed mean).
func runTrials(cfg *Config, size int, reset func(), run func() (trial, error)) (report.Point, error) {
	n := cfg.trials()
	sims := make([]time.Duration, 0, n)
	walls := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		if reset != nil && i > 0 {
			reset()
		}
		t, err := run()
		if err != nil {
			return report.Point{}, err
		}
		sims = append(sims, t.sim)
		walls = append(walls, t.wall)
	}
	return report.Point{
		Size:   size,
		Sim:    stats.TrimmedMean(sims),
		Wall:   stats.TrimmedMean(walls),
		StdDev: stats.StdDev(sims),
	}, nil
}

// asTrial converts an engine result.
func asTrial(r engine.Result) trial { return trial{sim: r.Sim, wall: r.Wall} }

// variantLabel names the dataset variant the way the figures do.
func variantLabel(formulas bool) string {
	if formulas {
		return "F"
	}
	return "V"
}

// Experiment couples an experiment ID with its runner.
type Experiment struct {
	ID    string
	Title string
	// Kind is "bct" or "oot".
	Kind string
	Run  func(cfg *Config) (*Result, error)
}

// annotateShapes appends the fitted complexity shape of every series to the
// result's notes — the observed-vs-expected comparison the BCT analysis
// performs per figure (§4: "compare the observed time complexity with the
// expected one").
func (r *Result) annotateShapes() {
	for _, s := range r.Series {
		pts := s.Sorted()
		if len(pts) < 3 {
			continue
		}
		sizes := make([]int, len(pts))
		sims := make([]time.Duration, len(pts))
		for i, p := range pts {
			sizes[i] = p.Size
			sims[i] = p.Sim
		}
		fit := stats.FitShape(sizes, sims)
		r.note("shape %-24s %-10s (R^2=%.3f)", s.Label+":", fit.Shape, fit.R2)
	}
}

// withShapes wraps an experiment runner with shape annotation.
func withShapes(run func(cfg *Config) (*Result, error)) func(cfg *Config) (*Result, error) {
	return func(cfg *Config) (*Result, error) {
		res, err := run(cfg)
		if res != nil {
			res.annotateShapes()
		}
		return res, err
	}
}

// Experiments returns the registry of all reproducible artifacts, in paper
// order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig2-open", Title: "Open latency vs rows (Figure 2)", Kind: "bct", Run: withShapes(RunOpen)},
		{ID: "fig3-sort", Title: "Sort latency vs rows (Figure 3)", Kind: "bct", Run: withShapes(RunSort)},
		{ID: "fig4-condfmt", Title: "Conditional formatting latency vs rows (Figure 4)", Kind: "bct", Run: withShapes(RunConditionalFormat)},
		{ID: "fig5-filter", Title: "Filter latency vs rows (Figure 5)", Kind: "bct", Run: withShapes(RunFilter)},
		{ID: "fig6-pivot", Title: "Pivot table latency vs rows (Figure 6)", Kind: "bct", Run: withShapes(RunPivot)},
		{ID: "fig7-countif", Title: "COUNTIF latency vs rows (Figure 7)", Kind: "bct", Run: withShapes(RunCountIf)},
		{ID: "fig8-vlookup", Title: "VLOOKUP latency vs rows (Figure 8)", Kind: "bct", Run: withShapes(RunVlookup)},
		{ID: "fig9-findreplace", Title: "Find-and-replace latency vs rows (Figure 9)", Kind: "oot", Run: withShapes(RunFindReplace)},
		{ID: "fig10-layout", Title: "Sequential vs random access (Figure 10)", Kind: "oot", Run: withShapes(RunLayout)},
		{ID: "fig11-shared", Title: "Repeated vs reusable computation (Figure 11)", Kind: "oot", Run: withShapes(RunShared)},
		{ID: "fig12-redundant", Title: "Redundant identical formulae (Figure 12)", Kind: "oot", Run: withShapes(RunRedundant)},
		{ID: "fig13-incremental", Title: "Recompute after single-cell update (Figure 13)", Kind: "oot", Run: withShapes(RunIncremental)},
		{ID: "fig14-multi", Title: "N formulae after single-cell update (Figure 14)", Kind: "oot", Run: withShapes(RunMultiFormula)},
		{ID: "ablation", Title: "§6 optimization ablations (extension)", Kind: "ext", Run: RunAblation},
		{ID: "plan-quality", Title: "Cost-based planner vs fixed strategies (extension)", Kind: "ext", Run: RunPlanQuality},
		{ID: "workloads", Title: "Business workload suite: cross-sheet update propagation (extension)", Kind: "ext", Run: RunWorkloads},
	}
}

// FindExperiment returns the experiment with the given ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
