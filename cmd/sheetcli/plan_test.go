package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenPlan runs `sheetcli plan` with the given flags and compares the
// output against (or, with -update, rewrites) the named golden file.
func goldenPlan(t *testing.T, name string, args []string) []byte {
	t.Helper()
	var out, errOut bytes.Buffer
	if code := runPlan(args, &out, &errOut); code != 0 {
		t.Fatalf("runPlan(%v) = %d, stderr: %s", args, code, errOut.String())
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test ./cmd/sheetcli -run Golden -update` to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
	return out.Bytes()
}

func TestPlanGoldenText(t *testing.T) {
	out := string(goldenPlan(t, "plan_200.txt", fixtureArgs))
	// The weather fixture's analysis block contributes the COUNTIF site; the
	// report must show the certificate verdict, the collected statistics, and
	// at least one priced choice with its basis.
	for _, want := range []string{
		"certificate valid",
		"statistics:",
		"choices:",
		"countif",
		"predicted main-sheet recalc:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q", want)
		}
	}
}

func TestPlanGoldenJSON(t *testing.T) {
	out := goldenPlan(t, "plan_200.json", append([]string{"-json"}, fixtureArgs...))
	var rep struct {
		Plan struct {
			Sheets []struct {
				Sheet string `json:"sheet"`
				Stats struct {
					Rows    int `json:"rows"`
					Columns []struct {
						Col int `json:"col"`
					} `json:"columns"`
				} `json:"stats"`
				Choices []struct {
					Kind       string `json:"kind"`
					Chosen     string `json:"chosen"`
					Candidates []struct {
						Strategy string `json:"strategy"`
						SimNS    int64  `json:"sim_ns"`
					} `json:"candidates"`
				} `json:"choices"`
			} `json:"sheets"`
			Certificate struct {
				Valid   bool `json:"valid"`
				Checked int  `json:"checked"`
			} `json:"certificate"`
		} `json:"plan"`
		Predicted []struct {
			Sheet     string `json:"sheet"`
			CellTouch int64  `json:"cell_touch"`
		} `json:"predicted"`
		MainRecalc int64 `json:"main_recalc_cell_touch"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Plan.Sheets) != 1 || rep.Plan.Sheets[0].Sheet != "weather" {
		t.Fatalf("sheets = %+v", rep.Plan.Sheets)
	}
	sp := rep.Plan.Sheets[0]
	if sp.Stats.Rows != 201 {
		t.Errorf("rows = %d", sp.Stats.Rows)
	}
	if len(sp.Stats.Columns) == 0 {
		t.Error("no column statistics collected")
	}
	if len(sp.Choices) == 0 {
		t.Error("no choices priced")
	}
	for _, c := range sp.Choices {
		if c.Chosen == "" || len(c.Candidates) == 0 {
			t.Errorf("unpriced choice %+v", c)
		}
	}
	if !rep.Plan.Certificate.Valid || rep.Plan.Certificate.Checked == 0 {
		t.Errorf("certificate = %+v", rep.Plan.Certificate)
	}
	if rep.MainRecalc <= 0 {
		t.Errorf("main recalc prediction = %d", rep.MainRecalc)
	}
	if len(rep.Predicted) != 1 || rep.Predicted[0].CellTouch <= 0 {
		t.Errorf("predicted = %+v", rep.Predicted)
	}
}

func TestPlanBadFile(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runPlan([]string{"testdata/does-not-exist.svf"}, &out, &errOut); code != 1 {
		t.Fatalf("code = %d", code)
	}
	if errOut.Len() == 0 {
		t.Error("expected an error message on stderr")
	}
}
