// Package iolib implements workbook file formats for the data-load
// experiments (§4.1): SVF, a line-oriented native workbook format carrying
// values, formulae and styles (standing in for xlsx/ods, whose size per row
// it approximates), and CSV import/export for raw data interchange.
package iolib

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/sheet"
)

// svfHeader is the magic first line of an SVF file.
const svfHeader = "SVF1"

// WriteWorkbook serializes a workbook to the SVF format.
func WriteWorkbook(w io.Writer, wb *sheet.Workbook) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "%s\t%d\n", svfHeader, wb.Len())
	for _, s := range wb.Sheets() {
		if err := writeSheet(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveWorkbook writes a workbook to a file path.
func SaveWorkbook(path string, wb *sheet.Workbook) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteWorkbook(f, wb); err != nil {
		f.Close()
		return fmt.Errorf("iolib: writing %s: %w", path, err)
	}
	return f.Close()
}

func writeSheet(bw *bufio.Writer, s *sheet.Sheet) error {
	rows, cols := s.Rows(), s.Cols()
	fmt.Fprintf(bw, "S\t%s\t%d\t%d\n", escapeName(s.Name), rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				bw.WriteByte('\t')
			}
			a := cell.Addr{Row: r, Col: c}
			if fc, ok := s.Formula(a); ok {
				// Persist the formula as authored at its current
				// location: shift relative refs by the displacement.
				dr, dc := fc.DeltaAt(a)
				if dr == 0 && dc == 0 {
					bw.WriteString(escapeField(fc.Code.Text))
				} else {
					bw.WriteString(escapeField(fc.Code.RewriteRelative(dr, dc)))
				}
				continue
			}
			writeValue(bw, s.Value(a))
		}
		bw.WriteByte('\n')
	}
	return nil
}

func writeValue(bw *bufio.Writer, v cell.Value) {
	switch v.Kind {
	case cell.Empty:
	case cell.Number:
		bw.WriteString("#n")
		bw.WriteString(strconv.FormatFloat(v.Num, 'g', -1, 64))
	case cell.Text:
		bw.WriteString("#t")
		bw.WriteString(escapeField(v.Str))
	case cell.Bool:
		if v.Num != 0 {
			bw.WriteString("#b1")
		} else {
			bw.WriteString("#b0")
		}
	case cell.ErrorVal:
		bw.WriteString("#e")
		bw.WriteString(v.Str)
	}
}

// escapeField protects tabs and newlines inside text payloads.
func escapeField(s string) string {
	if !strings.ContainsAny(s, "\t\n\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t':
			b.WriteString(`\t`)
		case '\n':
			b.WriteString(`\n`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapeField(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func escapeName(s string) string { return escapeField(s) }

// ReadResult is a parsed workbook plus parse statistics the engine meters.
type ReadResult struct {
	Workbook *sheet.Workbook
	// Bytes is the total bytes consumed.
	Bytes int64
	// Cells is the number of non-empty cells materialized.
	Cells int64
	// Formulas is the number of formula cells compiled.
	Formulas int64
}

// ReadWorkbook parses an SVF stream.
func ReadWorkbook(r io.Reader) (*ReadResult, error) {
	cr := &countingReader{r: r}
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("iolib: empty SVF stream")
	}
	head := strings.Split(sc.Text(), "\t")
	if head[0] != svfHeader {
		return nil, fmt.Errorf("iolib: bad SVF header %q", head[0])
	}
	nsheets := 1
	if len(head) > 1 {
		n, err := strconv.Atoi(head[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("iolib: bad sheet count %q", head[1])
		}
		nsheets = n
	}

	res := &ReadResult{Workbook: sheet.NewWorkbook()}
	// Deduplicate compiled formulae by text: spreadsheet files repeat the
	// same formula shape millions of times, and real loaders intern them.
	compiled := make(map[string]*formula.Compiled)

	for si := 0; si < nsheets; si++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("iolib: truncated SVF: missing sheet %d header", si)
		}
		parts := strings.Split(sc.Text(), "\t")
		if len(parts) != 4 || parts[0] != "S" {
			return nil, fmt.Errorf("iolib: bad sheet header %q", sc.Text())
		}
		rows, err1 := strconv.Atoi(parts[2])
		cols, err2 := strconv.Atoi(parts[3])
		if err1 != nil || err2 != nil || rows < 0 || cols < 0 {
			return nil, fmt.Errorf("iolib: bad sheet dimensions %q", sc.Text())
		}
		s := sheet.New(unescapeField(parts[1]), rows, cols)
		for r := 0; r < rows; r++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("iolib: truncated SVF: sheet %q row %d", s.Name, r)
			}
			if err := parseRow(s, r, sc.Text(), compiled, res); err != nil {
				return nil, err
			}
		}
		if err := res.Workbook.Add(s); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("iolib: reading SVF: %w", err)
	}
	res.Bytes = cr.n
	return res, nil
}

func parseRow(s *sheet.Sheet, r int, line string, compiled map[string]*formula.Compiled, res *ReadResult) error {
	col := 0
	for len(line) > 0 || col == 0 {
		var field string
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			field, line = line[:i], line[i+1:]
		} else {
			field, line = line, ""
		}
		if err := parseField(s, cell.Addr{Row: r, Col: col}, field, compiled, res); err != nil {
			return err
		}
		col++
		if line == "" {
			break
		}
	}
	return nil
}

func parseField(s *sheet.Sheet, a cell.Addr, field string, compiled map[string]*formula.Compiled, res *ReadResult) error {
	if field == "" {
		return nil
	}
	res.Cells++
	if field[0] == '=' {
		text := unescapeField(field)
		c, ok := compiled[text]
		if !ok {
			var err error
			c, err = formula.Compile(text)
			if err != nil {
				return fmt.Errorf("iolib: cell %s: %w", a, err)
			}
			compiled[text] = c
		}
		s.SetFormula(a, c)
		res.Formulas++
		return nil
	}
	if len(field) < 2 || field[0] != '#' {
		return fmt.Errorf("iolib: cell %s: bad field %q", a, field)
	}
	switch field[1] {
	case 'n':
		f, err := strconv.ParseFloat(field[2:], 64)
		if err != nil {
			return fmt.Errorf("iolib: cell %s: bad number %q", a, field[2:])
		}
		s.SetValue(a, cell.Num(f))
	case 't':
		s.SetValue(a, cell.Str(unescapeField(field[2:])))
	case 'b':
		s.SetValue(a, cell.Boolean(field[2:] == "1"))
	case 'e':
		s.SetValue(a, cell.Errorf(field[2:]))
	default:
		return fmt.Errorf("iolib: cell %s: unknown field tag %q", a, field[:2])
	}
	return nil
}

// LoadWorkbook reads an SVF file from disk.
func LoadWorkbook(path string) (*ReadResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := ReadWorkbook(f)
	if err != nil {
		return nil, fmt.Errorf("iolib: %s: %w", path, err)
	}
	return res, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
