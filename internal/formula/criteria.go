package formula

import (
	"strconv"
	"strings"

	"repro/internal/cell"
)

// Criterion is a compiled COUNTIF/SUMIF/AVERAGEIF matching condition. The
// dialect shared by all three systems accepts: a bare value (equality), a
// relational operator prefix (">=5", "<>STORM"), and the wildcards '*' and
// '?' in text equality ("ST*M"), with '~' escaping a wildcard.
type Criterion struct {
	op      BinOp
	num     float64
	isNum   bool
	text    string // lowercase pattern for text comparison
	hasWild bool
}

// CompileCriterion compiles a criterion from its argument value. Compiling
// once per aggregate call (rather than per cell) mirrors what every real
// implementation does; matching itself is charged per cell by the caller.
func CompileCriterion(v cell.Value) Criterion {
	switch v.Kind {
	case cell.Number, cell.Bool:
		return Criterion{op: OpEQ, num: v.Num, isNum: true}
	case cell.Empty:
		return Criterion{op: OpEQ, text: ""}
	case cell.Text:
		return compileTextCriterion(v.Str)
	default:
		return Criterion{op: OpEQ, text: strings.ToLower(v.AsString())}
	}
}

func compileTextCriterion(s string) Criterion {
	op := OpEQ
	rest := s
	switch {
	case strings.HasPrefix(s, ">="):
		op, rest = OpGE, s[2:]
	case strings.HasPrefix(s, "<="):
		op, rest = OpLE, s[2:]
	case strings.HasPrefix(s, "<>"):
		op, rest = OpNE, s[2:]
	case strings.HasPrefix(s, ">"):
		op, rest = OpGT, s[1:]
	case strings.HasPrefix(s, "<"):
		op, rest = OpLT, s[1:]
	case strings.HasPrefix(s, "="):
		op, rest = OpEQ, s[1:]
	}
	if f, err := strconv.ParseFloat(rest, 64); err == nil {
		return Criterion{op: op, num: f, isNum: true}
	}
	c := Criterion{op: op, text: strings.ToLower(rest)}
	if op == OpEQ || op == OpNE {
		c.hasWild = strings.ContainsAny(rest, "*?")
	}
	return c
}

// Shape exposes the criterion's structure for index-based evaluation: the
// relational operator, the comparison value, and whether the criterion is a
// plain (wildcard-free) equality an equality index can answer.
func (c Criterion) Shape() (op BinOp, v cell.Value, isEquality bool) {
	if c.isNum {
		v = cell.Num(c.num)
	} else {
		v = cell.Str(c.text)
	}
	return c.op, v, c.op == OpEQ && !c.hasWild
}

// Match reports whether a cell value satisfies the criterion.
func (c Criterion) Match(v cell.Value) bool {
	if c.isNum {
		f, ok := numericForCriterion(v)
		if !ok {
			// Non-numeric cells never match a numeric criterion, except
			// that "<>" matches non-blank cells that are not the number
			// (COUNTIF never counts blanks for "<>", in all three
			// dialects).
			return c.op == OpNE && !v.IsEmpty()
		}
		switch c.op {
		case OpEQ:
			return numEq(f, c.num)
		case OpNE:
			return !numEq(f, c.num)
		case OpLT:
			return f < c.num
		case OpLE:
			return f <= c.num
		case OpGT:
			return f > c.num
		case OpGE:
			return f >= c.num
		}
		return false
	}

	if c.op == OpNE && v.IsEmpty() {
		return false // blanks never count toward "<>text"
	}
	s := strings.ToLower(v.AsString())
	if c.hasWild {
		ok := wildMatch(c.text, s)
		if c.op == OpNE {
			return !ok
		}
		return ok
	}
	switch c.op {
	case OpEQ:
		return s == c.text
	case OpNE:
		return s != c.text
	case OpLT:
		return s < c.text
	case OpLE:
		return s <= c.text
	case OpGT:
		return s > c.text
	case OpGE:
		return s >= c.text
	}
	return false
}

// numericForCriterion extracts a number for numeric criteria: numbers and
// bools qualify; text does NOT coerce (COUNTIF("5", 5) does match in real
// systems, so numeric-looking text qualifies too); empty does not match.
func numericForCriterion(v cell.Value) (float64, bool) {
	switch v.Kind {
	case cell.Number, cell.Bool:
		return v.Num, true
	case cell.Text:
		f, err := strconv.ParseFloat(v.Str, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// wildMatch matches pattern p (lowercase, may contain '*' and '?', with '~'
// escaping) against s (lowercase). Iterative two-pointer algorithm with
// backtracking over the last '*'; O(len(p)*len(s)) worst case, linear in
// practice.
func wildMatch(p, s string) bool {
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && p[pi] == '~' && pi+1 < len(p):
			if p[pi+1] == s[si] {
				pi += 2
				si++
				continue
			}
			if star < 0 {
				return false
			}
			pi, mark = star+1, mark+1
			si = mark
		case pi < len(p) && (p[pi] == '?' || p[pi] == s[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '*':
			star, mark = pi, si
			pi++
		case star >= 0:
			pi, mark = star+1, mark+1
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '*' {
		pi++
	}
	return pi == len(p)
}

// numEq reports exact float64 equality. Spreadsheet dialects define
// criteria matching and RANK ties as exact numeric equality, so this is
// correct semantics, not an accident — it is the one audited place inline
// float comparison is allowed, and the floatcmp lint allowlists it by name.
func numEq(a, b float64) bool { return a == b }
