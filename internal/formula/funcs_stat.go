package formula

import (
	"math"
	"sort"

	"repro/internal/cell"
)

func init() {
	register("MEDIAN", 1, -1, fnMedian)
	register("STDEV", 1, -1, fnStdev)
	register("VAR", 1, -1, fnVar)
	register("LARGE", 2, 2, fnLarge)
	register("SMALL", 2, 2, fnSmall)
	register("RANK", 2, 3, fnRank)
	register("PERCENTILE", 2, 2, fnPercentile)
}

// collectNumbers gathers all numeric cells from the operands.
func collectNumbers(env *Env, args []operand) ([]float64, cell.Value) {
	var xs []float64
	errv := forEachNumber(env, args, func(x float64) bool { xs = append(xs, x); return true })
	return xs, errv
}

func fnMedian(env *Env, args []operand) cell.Value {
	xs, errv := collectNumbers(env, args)
	if errv.IsError() {
		return errv
	}
	if len(xs) == 0 {
		return cell.Errorf(cell.ErrValue)
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return cell.Num(xs[n/2])
	}
	return cell.Num((xs[n/2-1] + xs[n/2]) / 2)
}

// variance returns the sample variance via Welford's algorithm (stable for
// the large columns the benchmark scans).
func variance(xs []float64) (float64, bool) {
	if len(xs) < 2 {
		return 0, false
	}
	var mean, m2 float64
	for i, x := range xs {
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
	}
	return m2 / float64(len(xs)-1), true
}

func fnStdev(env *Env, args []operand) cell.Value {
	xs, errv := collectNumbers(env, args)
	if errv.IsError() {
		return errv
	}
	v, ok := variance(xs)
	if !ok {
		return cell.Errorf(cell.ErrDiv0)
	}
	return cell.Num(math.Sqrt(v))
}

func fnVar(env *Env, args []operand) cell.Value {
	xs, errv := collectNumbers(env, args)
	if errv.IsError() {
		return errv
	}
	v, ok := variance(xs)
	if !ok {
		return cell.Errorf(cell.ErrDiv0)
	}
	return cell.Num(v)
}

func fnLarge(env *Env, args []operand) cell.Value {
	return kth(env, args, true)
}

func fnSmall(env *Env, args []operand) cell.Value {
	return kth(env, args, false)
}

func kth(env *Env, args []operand, largest bool) cell.Value {
	xs, errv := collectNumbers(env, args[:1])
	if errv.IsError() {
		return errv
	}
	var k int
	if e := intArg(env, args[1], &k); e.IsError() {
		return e
	}
	if k < 1 || k > len(xs) {
		return cell.Errorf(cell.ErrValue)
	}
	sort.Float64s(xs)
	if largest {
		return cell.Num(xs[len(xs)-k])
	}
	return cell.Num(xs[k-1])
}

func fnRank(env *Env, args []operand) cell.Value {
	v := args[0].scalar(env)
	if v.IsError() {
		return v
	}
	x, ok := v.AsNumber()
	if !ok {
		return cell.Errorf(cell.ErrValue)
	}
	xs, errv := collectNumbers(env, args[1:2])
	if errv.IsError() {
		return errv
	}
	ascending := false
	if len(args) == 3 {
		var order int
		if e := intArg(env, args[2], &order); e.IsError() {
			return e
		}
		ascending = order != 0
	}
	rank, found := 1, false
	for _, y := range xs {
		if numEq(y, x) {
			found = true
		}
		if (ascending && y < x) || (!ascending && y > x) {
			rank++
		}
	}
	if !found {
		return cell.Errorf(cell.ErrNA)
	}
	return cell.Num(float64(rank))
}

func fnPercentile(env *Env, args []operand) cell.Value {
	xs, errv := collectNumbers(env, args[:1])
	if errv.IsError() {
		return errv
	}
	p := args[1].scalar(env)
	f, ok := p.AsNumber()
	if !ok || f < 0 || f > 1 || len(xs) == 0 {
		return cell.Errorf(cell.ErrValue)
	}
	sort.Float64s(xs)
	// Linear interpolation between closest ranks (the shared dialect rule).
	pos := f * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cell.Num(xs[lo])
	}
	frac := pos - float64(lo)
	return cell.Num(xs[lo]*(1-frac) + xs[hi]*frac)
}
