// Cost-model validation across the business workload suite, in the
// external test package so it can drive the real optimized engine (which
// imports analyze for its install pre-flight).
package analyze_test

import (
	"testing"

	"repro/internal/analyze"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/workload"
)

// TestEstEvalCellsWorkloadBound holds the read estimate within a factor of
// two of the cells the optimized engine actually touches, on every
// registered workload — not just the single-sheet weather dataset the
// lookup bound was first asserted on. The business workloads exercise the
// cross-sheet half of the model: ledger's summary aggregates and exact
// VLOOKUPs, inventory's two-way external chain, and gradebook's
// approximate boundary-table VLOOKUPs all read foreign sheets that
// PrecedentCells never charges.
//
// Measured work is a steady-state full recalculation of the main sheet: a
// Recalculate evaluates the host sheet's calc chain and then runs the
// external-reference refresh pass over every sheet, which is exactly the
// workbook-wide read set the summed per-sheet estimates model.
func TestEstEvalCellsWorkloadBound(t *testing.T) {
	for _, gen := range workload.Generators() {
		gen := gen
		t.Run(gen.Name, func(t *testing.T) {
			const rows = 5000
			wb := gen.Build(workload.Spec{Rows: rows, Formulas: true})
			var est int64
			for _, s := range wb.Sheets() {
				est += analyze.SheetReportFor(s, analyze.Options{}).EstEvalCells
			}

			eng := engine.New(engine.Profiles()["optimized"])
			if err := eng.Install(wb); err != nil {
				t.Fatal(err)
			}
			// Second recalculation: steady state, no first-touch index
			// builds or settling writes left to charge.
			if _, err := eng.Recalculate(wb.First()); err != nil {
				t.Fatal(err)
			}
			res, err := eng.Recalculate(wb.First())
			if err != nil {
				t.Fatal(err)
			}
			touched := res.Work.Count(costmodel.CellTouch)

			if touched == 0 || est == 0 {
				t.Fatalf("degenerate measurement: est=%d touched=%d", est, touched)
			}
			if est > 2*touched || touched > 2*est {
				t.Errorf("EstEvalCells = %d vs %d cells touched; want within 2x", est, touched)
			}
			t.Logf("est=%d touched=%d ratio=%.2f", est, touched, float64(touched)/float64(est))
		})
	}
}
