// Package latticegood holds the shapes latticecheck must accept: every
// domain dispatch carries a default, and non-domain switches are exempt.
package latticegood

type node interface{ isNode() }

type numLit float64

func (numLit) isNode() {}

type binary struct {
	Op   int
	L, R node
}

func (binary) isNode() {}

type value struct {
	Kind int
	Num  float64
}

// typeSwitchWithDefault is the required shape: unknowns go to top.
func typeSwitchWithDefault(n node) int {
	switch n.(type) {
	case numLit:
		return 1
	case binary:
		return 2
	default:
		return -1 // top: no claim about nodes added later
	}
}

// opSwitchWithDefault dispatches exhaustively by construction.
func opSwitchWithDefault(b binary) int {
	switch b.Op {
	case 0:
		return 1
	default:
		return -1
	}
}

// kindSwitchWithDefault carries the conservative arm.
func kindSwitchWithDefault(v value) bool {
	switch v.Kind {
	case 0:
		return true
	default:
		return false
	}
}

// taglessSwitch is a condition chain, not domain dispatch; never flagged.
func taglessSwitch(x int) int {
	switch {
	case x > 10:
		return 1
	case x > 0:
		return 2
	}
	return 0
}

// nonDomainSelector switches over a selector outside the lattice set.
func nonDomainSelector(v struct{ Count int }) int {
	switch v.Count {
	case 0:
		return 1
	}
	return 0
}
