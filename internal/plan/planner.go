package plan

import (
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/regions"
	"repro/internal/sheet"
)

// Options configures a plan build.
type Options struct {
	// Coeff scalarizes candidate meters to simulated time for comparison.
	// The zero value selects DefaultCoefficients.
	Coeff costmodel.Coefficients
	// SampleCap bounds the per-column distinct-count sample (default 256).
	SampleCap int
	// Cache, when non-nil, carries column statistics across plan builds,
	// invalidated per column by ColVersion.
	Cache *Cache
	// ColVersion supplies the current version of a column, keying cached
	// statistics the way the engine keys its sortedness certificates. Nil
	// means version 0 everywhere (immutable one-shot analysis).
	ColVersion func(sheetName string, col int) int64
}

// DefaultCoefficients is the planning coefficient set used when Options
// leaves Coeff zero: the Excel-scale per-op times from the engine's
// calibration (engine profiles pass their own coefficients instead, so this
// only backs standalone static analysis and the CLI).
func DefaultCoefficients() costmodel.Coefficients {
	var c costmodel.Coefficients
	c[costmodel.CellTouch] = 120
	c[costmodel.CellWrite] = 300
	c[costmodel.Compare] = 50
	c[costmodel.DepOp] = 1400
	c[costmodel.StaleCheck] = 40
	c[costmodel.FormulaEval] = 1000
	c[costmodel.IndexProbe] = 50
	return c
}

// lookupSite is one globally merged lookup site: every use across the
// workbook that probes the same (sheet, column, span, match kind).
type lookupSite struct {
	key      SiteKey
	fn       string
	mode     int
	count    int
	allLocal bool // every use hosted on the probed sheet (host index usable)
}

// Build derives a plan for the workbook: statistics for every column an
// operation site consults, priced candidates per site, and the chosen
// strategies with their predicted steady-state recalculation work.
func Build(wb *sheet.Workbook, opt Options) *Plan {
	if opt.Coeff == (costmodel.Coefficients{}) {
		opt.Coeff = DefaultCoefficients()
	}
	pr := pricer{coeff: opt.Coeff}

	type sheetCtx struct {
		s    *sheet.Sheet
		set  *siteSet
		coll *Collector
		sp   *SheetPlan
	}
	var ctxs []*sheetCtx
	// Globally merged lookup sites, keyed by the sheet whose column they
	// probe (where the engine consults the plan).
	sites := make(map[string]map[SiteKey]*lookupSite)

	for _, s := range wb.Sheets() {
		ver := func(col int) int64 { return 0 }
		if opt.ColVersion != nil {
			name := s.Name
			ver = func(col int) int64 { return opt.ColVersion(name, col) }
		}
		var sc *sheetCache
		if opt.Cache != nil {
			sc = opt.Cache.sheet(s.Name)
		}
		ctx := &sheetCtx{
			s:    s,
			set:  collectSites(s),
			coll: newCollector(s, ver, sc, opt.SampleCap),
		}
		ctxs = append(ctxs, ctx)
		for target, bySite := range ctx.set.lookups {
			local := target == ""
			if local {
				target = s.Name
			}
			reg, ok := sites[target]
			if !ok {
				reg = make(map[SiteKey]*lookupSite)
				sites[target] = reg
			}
			for key, agg := range bySite {
				site, ok := reg[key]
				if !ok {
					site = &lookupSite{key: key, fn: agg.fn, mode: agg.mode, allLocal: true}
					reg[key] = site
				}
				site.count += agg.count
				site.allLocal = site.allLocal && local
			}
		}
	}

	p := &Plan{}
	plans := make(map[string]*SheetPlan)
	for _, ctx := range ctxs {
		ctx.sp = buildSheetPlan(ctx.s, ctx.set, ctx.coll, sites[ctx.s.Name], pr)
		p.Sheets = append(p.Sheets, ctx.sp)
		plans[ctx.s.Name] = ctx.sp
	}

	// Second pass: predict each sheet's steady-state recalculation work
	// under the chosen strategies. Lookup choices may live on other sheets,
	// so this runs only after every sheet plan exists.
	for _, ctx := range ctxs {
		predictSheet(ctx.sp, ctx.s.Name, ctx.set, plans)
	}

	// Record the statistics the plan rests on, with their versions — the
	// consumer's invalidation key.
	for _, ctx := range ctxs {
		var cols []int
		for col := range ctx.coll.cols {
			cols = append(cols, col)
		}
		sortInts(cols)
		for _, col := range cols {
			cs := ctx.coll.cols[col]
			ctx.sp.Stats.Columns = append(ctx.sp.Stats.Columns, *cs)
			p.statCols = append(p.statCols, StatColumn{Sheet: ctx.s.Name, Col: col, Version: cs.Version})
		}
	}
	return p
}

// buildSheetPlan makes every choice that executes against one sheet.
func buildSheetPlan(s *sheet.Sheet, set *siteSet, coll *Collector, lookups map[SiteKey]*lookupSite, pr pricer) *SheetPlan {
	sp := &SheetPlan{
		Sheet: s.Name,
		Stats: SheetSummary{
			Rows:     s.Rows(),
			Cols:     s.Cols(),
			Formulas: s.FormulaCount(),
			External: s.ExternalCount(),
		},
		lookups: make(map[SiteKey]*Choice),
		countIf: make(map[int]*Choice),
		aggs:    make(map[int]*Choice),
		builds:  make(map[int]*Choice),
	}

	var keys []SiteKey
	for key := range lookups {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.R0 != b.R0 {
			return a.R0 < b.R0
		}
		if a.R1 != b.R1 {
			return a.R1 < b.R1
		}
		return !a.Exact && b.Exact
	})
	for _, key := range keys {
		c := planLookup(sp.Sheet, lookups[key], coll, pr)
		sp.lookups[key] = c
		sp.Choices = append(sp.Choices, c)
	}

	for _, col := range sortedCols(set.countIf) {
		c := planCountIf(sp.Sheet, col, set.countIf[col], coll, pr)
		sp.countIf[col] = c
		sp.Choices = append(sp.Choices, c)
	}
	for _, col := range sortedCols(set.aggs) {
		c := planAggregate(sp.Sheet, col, set.aggs[col], pr)
		sp.aggs[col] = c
		sp.Choices = append(sp.Choices, c)
		if c.Chosen == PrefixSum {
			b := planBuild(sp.Sheet, col, set.aggs[col], pr)
			sp.builds[col] = b
			sp.Choices = append(sp.Choices, b)
		}
	}

	if s.FormulaCount() > 0 {
		c, regionCount := planRecalc(s, pr)
		sp.recalc = c
		sp.Stats.Regions = regionCount
		sp.Choices = append(sp.Choices, c)
	}
	if c, loads := planMaintenance(sp.Sheet, set, pr); c != nil {
		sp.maint = c
		sp.maintLoads = loads
		sp.Choices = append(sp.Choices, c)
	}
	return sp
}

// planLookup prices scan vs binary search vs hash probe for one lookup
// site on the sheet holding the key column.
func planLookup(sheetName string, site *lookupSite, coll *Collector, pr pricer) *Choice {
	n := site.key.Span()
	cs := coll.Column(site.key.Col)
	sorted, static := coll.SortedAsc(site.key.Col, site.key.R0, site.key.R1)
	count := int64(site.count)

	cands := []Candidate{{
		Strategy: Scan,
		Work:     scanLookupWork(site.fn, site.mode, n),
		Feasible: true,
	}}

	bs := Candidate{Strategy: BinarySearch}
	switch {
	case site.mode < 0:
		bs.Note = "descending match order"
	case !sorted:
		bs.Note = "key column not an ascending numeric run"
	default:
		bs.Feasible = true
		bs.Work = binSearchLookupWork(site.fn, n, static, count)
		if !static {
			bs.Note = "first use pays a certification rescan (amortized)"
		}
	}
	cands = append(cands, bs)

	hp := Candidate{Strategy: HashProbe}
	switch {
	case !site.key.Exact:
		hp.Note = "approximate match needs ordered access"
	case !site.allLocal:
		hp.Note = "cross-sheet table: no host-sheet index"
	default:
		hp.Feasible = true
		hp.Work = hashLookupWork(n, cs.ExpectedMatches(n), count)
	}
	cands = append(cands, hp)

	c := choose(KindLookup, sheetName, site.fn, cands, pr)
	c.Site = site.key
	c.Count = site.count
	c.Basis = fmt.Sprintf("%s n=%d uses=%d distinct≈%d sorted=%v static=%v",
		siteID(sheetName, site.key), n, site.count, cs.Distinct, sorted, static)
	switch c.Chosen {
	case BinarySearch:
		probes := ceilLog2(n) + 1
		c.serveWork = mk(mTouch, probes, mCompare, probes)
		if site.fn == "VLOOKUP" {
			c.serveWork.Add(costmodel.CellTouch, 1)
		}
		if !static {
			c.buildWork = mk(mTouch, n)
		}
	case HashProbe:
		c.serveWork = mk(mProbe, cs.ExpectedMatches(n), mTouch, 1)
		c.buildWork = mk(mTouch, n, mProbe, n)
	case Scan:
		c.serveWork = scanLookupWork(site.fn, site.mode, n)
	}
	return c
}

// planCountIf prices full scan vs index probes for COUNTIF over one
// column.
func planCountIf(sheetName string, col int, agg *colSiteAgg, coll *Collector, pr pricer) *Choice {
	n := int64(agg.r1 - agg.r0 + 1)
	cs := coll.Column(col)
	count := int64(agg.count)

	cands := []Candidate{{Strategy: Scan, Work: scanCountWork(n), Feasible: true}}
	if agg.equality {
		cands = append(cands, Candidate{
			Strategy: HashProbe,
			Work:     hashCountWork(n, cs.ExpectedMatches(n), count),
			Feasible: true,
		})
	} else {
		cands = append(cands, Candidate{
			Strategy: BTreeCount,
			Work:     btreeCountWork(n, count),
			Feasible: true,
		})
	}

	c := choose(KindCountIf, sheetName, agg.fn, cands, pr)
	c.Site = SiteKey{Col: col, R0: agg.r0, R1: agg.r1, Exact: agg.equality}
	c.Count = agg.count
	c.Basis = fmt.Sprintf("%s n=%d uses=%d distinct≈%d equality=%v",
		siteID(sheetName, c.Site), n, agg.count, cs.Distinct, agg.equality)
	switch c.Chosen {
	case HashProbe:
		c.serveWork = mk(mProbe, cs.ExpectedMatches(n), mEval, 1)
		c.buildWork = mk(mTouch, n, mProbe, n)
	case BTreeCount:
		c.serveWork = mk(mProbe, 2*(ceilLog2(n)+1), mEval, 1)
		c.buildWork = mk(mTouch, n, mProbe, n)
	case Scan:
		c.serveWork = scanCountWork(n)
	}
	return c
}

// planAggregate prices full scan vs prefix-sum service for SUM/COUNT/
// AVERAGE over one column. The prefix candidate is priced with a lazy
// (amortized) fill; the separate build choice then schedules it eagerly.
func planAggregate(sheetName string, col int, agg *colSiteAgg, pr pricer) *Choice {
	n := int64(agg.r1 - agg.r0 + 1)
	count := int64(agg.count)
	cands := []Candidate{
		{Strategy: Scan, Work: scanAggWork(n), Feasible: true},
		{Strategy: PrefixSum, Work: prefixAggWork(n, count, false), Feasible: true},
	}
	c := choose(KindAggregate, sheetName, agg.fn, cands, pr)
	c.Site = SiteKey{Col: col, R0: agg.r0, R1: agg.r1}
	c.Count = agg.count
	c.Basis = fmt.Sprintf("%s n=%d uses=%d", siteID(sheetName, c.Site), n, agg.count)
	if c.Chosen == PrefixSum {
		c.serveWork = mk(mProbe, 2, mEval, 1)
		c.buildWork = mk(mTouch, n)
	} else {
		c.serveWork = scanAggWork(n)
	}
	return c
}

// planBuild schedules a chosen prefix-sum index eagerly (install time,
// uncharged by the engine's accounting) or lazily (first use pays the
// fill). With even one instance the eager build dominates.
func planBuild(sheetName string, col int, agg *colSiteAgg, pr pricer) *Choice {
	n := int64(agg.r1 - agg.r0 + 1)
	count := int64(agg.count)
	cands := []Candidate{
		{Strategy: EagerBuild, Work: prefixAggWork(n, count, true), Feasible: true,
			Note: "install-time build, uncharged"},
		{Strategy: LazyBuild, Work: prefixAggWork(n, count, false), Feasible: true},
	}
	c := choose(KindIndexBuild, sheetName, agg.fn, cands, pr)
	c.Site = SiteKey{Col: col, R0: agg.r0, R1: agg.r1}
	c.Count = agg.count
	c.Basis = fmt.Sprintf("%s n=%d uses=%d", siteID(sheetName, c.Site), n, agg.count)
	return c
}

// planRecalc prices region-level vs per-cell recalculation sequencing for
// one sheet, running the real region inference (planning is uncharged
// static analysis, so the measured op counts are free to consult).
func planRecalc(s *sheet.Sheet, pr pricer) (*Choice, int) {
	f := int64(s.FormulaCount())
	sr := regions.Infer(s)
	g := regions.Build(sr)
	inferOps := sr.Ops() + g.Ops()

	cands := []Candidate{{Strategy: PerCell, Work: perCellSequenceWork(f), Feasible: true}}
	rc := Candidate{Strategy: RegionChain}
	if g.OK() {
		rc.Feasible = true
		rc.Work = regionSequenceWork(inferOps, f)
	} else {
		rc.Note = "region graph not orderable (irregular dependencies)"
	}
	cands = append(cands, rc)

	c := choose(KindRecalc, s.Name, "", cands, pr)
	c.Count = int(f)
	c.Basis = fmt.Sprintf("%s formulas=%d regions=%d inferOps=%d ok=%v",
		s.Name, f, len(sr.Regions), inferOps, g.OK())
	if cand, ok := c.chosenCandidate(); ok {
		c.serveWork = cand.Work
		if c.Chosen == RegionChain {
			// Emission repeats every recalc; inference only when the engine's
			// region cache is stale (incremental maintenance usually keeps it
			// warm across formula edits).
			c.serveWork = mk(mDepOp, f)
			c.buildWork = mk(mDepOp, inferOps)
		}
	}
	return c, len(sr.Regions)
}

// planMaintenance prices delta vs recompute maintenance of materialized
// aggregates through a cell edit, using the worst (most covered) column as
// the representative edit site. Sheets with no aggregate sites skip the
// choice (nothing to maintain either way). The second result carries the
// per-column aggregate counts backing MaintWork's per-edit predictions.
func planMaintenance(sheetName string, set *siteSet, pr pricer) (*Choice, map[int]int64) {
	type colLoad struct {
		aggs  int64
		cells int64
	}
	loads := make(map[int]*colLoad)
	note := func(col int, agg *colSiteAgg) {
		l, ok := loads[col]
		if !ok {
			l = &colLoad{}
			loads[col] = l
		}
		l.aggs += int64(agg.count)
		l.cells += int64(agg.count) * int64(agg.r1-agg.r0+1)
	}
	for col, agg := range set.countIf {
		note(col, agg)
	}
	for col, agg := range set.aggs {
		note(col, agg)
	}
	if len(loads) == 0 {
		return nil, nil
	}
	worstCol, worst := -1, &colLoad{}
	for col, l := range loads {
		if l.cells > worst.cells || (l.cells == worst.cells && (worstCol < 0 || col < worstCol)) {
			worstCol, worst = col, l
		}
	}

	cands := []Candidate{
		{Strategy: Delta, Work: deltaMaintWork(worst.aggs), Feasible: true},
		{Strategy: Recompute, Work: recomputeMaintWork(worst.cells), Feasible: true},
	}
	c := choose(KindMaint, sheetName, "", cands, pr)
	c.Site = SiteKey{Col: worstCol}
	c.Count = int(worst.aggs)
	c.Basis = fmt.Sprintf("%s worst col=%d aggregates=%d covered cells=%d",
		sheetName, worstCol, worst.aggs, worst.cells)
	perCol := make(map[int]int64, len(loads))
	for col, l := range loads {
		perCol[col] = l.aggs
	}
	return c, perCol
}

// choose scalarizes the candidates, orders feasible ones by ascending
// simulated time (infeasible ones trail), and picks the cheapest feasible.
func choose(kind, sheetName, fn string, cands []Candidate, pr pricer) *Choice {
	for i := range cands {
		if cands[i].Feasible {
			cands[i].Sim = pr.sim(cands[i].Work)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Feasible != cands[j].Feasible {
			return cands[i].Feasible
		}
		if !cands[i].Feasible {
			return false
		}
		return cands[i].Sim < cands[j].Sim
	})
	c := &Choice{Kind: kind, Sheet: sheetName, Fn: fn, Candidates: cands}
	if len(cands) > 0 && cands[0].Feasible {
		c.Chosen = cands[0].Strategy
	}
	return c
}

// predictSheet computes the sheet's Predicted and PredictedExt meters: one
// evaluation of every hosted formula under the chosen strategies. COUNTIF
// and aggregate sites are charged as scans here — the engine's index and
// prefix services answer formula *insertion*, while full recalculation
// always re-scans (the plan's countif/aggregate choices are priced against
// insert-time work in the bench matrix instead).
func predictSheet(sp *SheetPlan, hostName string, set *siteSet, plans map[string]*SheetPlan) {
	var pm, ext costmodel.Meter
	for _, fi := range set.formulas {
		var fm costmodel.Meter
		fm.Add(costmodel.FormulaEval, 1)
		fm.Add(costmodel.CellTouch, fi.refCells+fi.plainLocalCells+fi.extPlainCells)
		for _, use := range fi.lookups {
			target := use.target
			if target == "" {
				target = hostName
			}
			work := scanLookupWork(use.fn, use.mode, use.key.Span())
			if tp := plans[target]; tp != nil {
				if c, ok := tp.lookups[use.key]; ok {
					if cand, ok := c.chosenCandidate(); ok {
						work = cand.Work
					}
				}
			}
			addMeter(&fm, work)
		}
		for _, cu := range fi.colUses {
			span := int64(cu.r1 - cu.r0 + 1)
			if cu.kind == KindCountIf {
				addMeter(&fm, scanCountWork(span))
			} else {
				addMeter(&fm, scanAggWork(span))
			}
		}
		addMeter(&pm, fm)
		if fi.external {
			addMeter(&ext, fm)
		}
	}
	sp.Predicted = pm
	sp.PredictedExt = ext
}

// sortedCols returns the map's keys ascending.
func sortedCols(m map[int]*colSiteAgg) []int {
	cols := make([]int, 0, len(m))
	for col := range m {
		cols = append(cols, col)
	}
	sortInts(cols)
	return cols
}
