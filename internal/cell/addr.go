// Package cell defines the fundamental spreadsheet value model: cell
// addresses in A1 notation, typed cell values, rectangular ranges, and cell
// styles. Every other package in the repository builds on these types.
package cell

import (
	"fmt"
	"strings"
)

// Addr identifies a single cell by zero-based row and column. Row 0 column 0
// is the cell displayed as "A1".
type Addr struct {
	Row int
	Col int
}

// A1 returns the address in A1 notation, e.g. {0,0} -> "A1", {1,27} -> "AB2".
func (a Addr) A1() string {
	return ColName(a.Col) + fmt.Sprint(a.Row+1)
}

// String implements fmt.Stringer using A1 notation.
func (a Addr) String() string { return a.A1() }

// Valid reports whether the address has non-negative coordinates.
func (a Addr) Valid() bool { return a.Row >= 0 && a.Col >= 0 }

// Offset returns the address translated by dr rows and dc columns.
func (a Addr) Offset(dr, dc int) Addr { return Addr{Row: a.Row + dr, Col: a.Col + dc} }

// ColName converts a zero-based column index to its spreadsheet letter name:
// 0 -> "A", 25 -> "Z", 26 -> "AA".
func ColName(col int) string {
	if col < 0 {
		return "?"
	}
	var buf [8]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('A' + col%26)
		col = col/26 - 1
		if col < 0 {
			break
		}
	}
	return string(buf[i:])
}

// ParseColName converts a spreadsheet column name to its zero-based index:
// "A" -> 0, "Z" -> 25, "AA" -> 26. The name is case-insensitive.
func ParseColName(name string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("cell: empty column name")
	}
	if len(name) > 8 {
		// 8 letters already name 2*10^11 columns; longer names only
		// overflow the index arithmetic.
		return 0, fmt.Errorf("cell: column name %q too long", name)
	}
	col := 0
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'A' && c <= 'Z':
			col = col*26 + int(c-'A') + 1
		case c >= 'a' && c <= 'z':
			col = col*26 + int(c-'a') + 1
		default:
			return 0, fmt.Errorf("cell: invalid column name %q", name)
		}
	}
	return col - 1, nil
}

// ParseAddr parses an A1-notation address such as "B12". Dollar signs
// (absolute markers) are accepted and ignored; use ParseRef to retain them.
func ParseAddr(s string) (Addr, error) {
	ref, err := ParseRef(s)
	if err != nil {
		return Addr{}, err
	}
	return ref.Addr, nil
}

// MustParseAddr is like ParseAddr but panics on error. It is intended for
// tests and compile-time-constant addresses.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Ref is a cell reference as written in a formula: an address plus absolute
// flags for the row and column components ("$A$1", "A$1", "$A1", "A1").
// Absolute components are not rewritten when formulas are copied or when
// rows are reorganized; the distinction drives the recalculation-necessity
// analysis of DESIGN.md §4.
type Ref struct {
	Addr   Addr
	AbsRow bool
	AbsCol bool
}

// String renders the reference with its absolute markers.
func (r Ref) String() string {
	var b strings.Builder
	if r.AbsCol {
		b.WriteByte('$')
	}
	b.WriteString(ColName(r.Addr.Col))
	if r.AbsRow {
		b.WriteByte('$')
	}
	fmt.Fprint(&b, r.Addr.Row+1)
	return b.String()
}

// ParseRef parses a single cell reference with optional absolute markers.
func ParseRef(s string) (Ref, error) {
	var ref Ref
	i := 0
	if i < len(s) && s[i] == '$' {
		ref.AbsCol = true
		i++
	}
	j := i
	for j < len(s) && isLetter(s[j]) {
		j++
	}
	if j == i {
		return Ref{}, fmt.Errorf("cell: reference %q has no column letters", s)
	}
	col, err := ParseColName(s[i:j])
	if err != nil {
		return Ref{}, err
	}
	i = j
	if i < len(s) && s[i] == '$' {
		ref.AbsRow = true
		i++
	}
	j = i
	row := 0
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		row = row*10 + int(s[j]-'0')
		j++
	}
	if j == i || j != len(s) {
		return Ref{}, fmt.Errorf("cell: invalid reference %q", s)
	}
	if j-i > 9 {
		// A row number past 10^9 is outside any system's grid and would
		// overflow downstream arithmetic.
		return Ref{}, fmt.Errorf("cell: row number in %q too large", s)
	}
	if row == 0 {
		return Ref{}, fmt.Errorf("cell: row numbers start at 1 in %q", s)
	}
	ref.Addr = Addr{Row: row - 1, Col: col}
	return ref, nil
}

func isLetter(c byte) bool {
	return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
}
