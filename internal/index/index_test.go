package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func TestHashBasics(t *testing.T) {
	h := NewHash()
	h.Add(3, cell.Num(7))
	h.Add(1, cell.Num(7))
	h.Add(5, cell.Str("STORM"))
	if h.Len() != 3 || h.DistinctValues() != 2 {
		t.Fatalf("Len=%d Distinct=%d", h.Len(), h.DistinctValues())
	}
	row, _, ok := h.FirstRow(cell.Num(7), 0, 10)
	if !ok || row != 1 {
		t.Errorf("FirstRow = %d,%v", row, ok)
	}
	row, _, ok = h.FirstRow(cell.Num(7), 2, 10)
	if !ok || row != 3 {
		t.Errorf("FirstRow from 2 = %d,%v", row, ok)
	}
	if _, _, ok := h.FirstRow(cell.Num(8), 0, 10); ok {
		t.Error("missing value found")
	}
	// Case-insensitive text, like spreadsheet equality.
	if _, _, ok := h.FirstRow(cell.Str("storm"), 0, 10); !ok {
		t.Error("text lookup should be case-insensitive")
	}
	if n, _ := h.Count(cell.Num(7), 0, 10); n != 2 {
		t.Errorf("Count = %d", n)
	}
	if n, _ := h.Count(cell.Num(7), 2, 10); n != 1 {
		t.Errorf("range-restricted Count = %d", n)
	}
	h.Remove(1, cell.Num(7))
	if n, _ := h.Count(cell.Num(7), 0, 10); n != 1 {
		t.Errorf("Count after remove = %d", n)
	}
	h.Remove(1, cell.Num(7)) // idempotent
	h.Add(2, cell.Value{})   // empties not indexed
	if h.Len() != 2 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestHashReplace(t *testing.T) {
	h := NewHash()
	h.Add(4, cell.Num(1))
	h.Replace(4, cell.Num(1), cell.Num(2))
	if _, _, ok := h.FirstRow(cell.Num(1), 0, 10); ok {
		t.Error("old value still present")
	}
	if row, _, ok := h.FirstRow(cell.Num(2), 0, 10); !ok || row != 4 {
		t.Error("new value missing")
	}
}

// TestHashMatchesNaive: Count and FirstRow agree with a scan for random
// columns.
func TestHashMatchesNaive(t *testing.T) {
	f := func(vals []uint8, query uint8, lo8, hi8 uint8) bool {
		h := NewHash()
		col := make([]cell.Value, len(vals))
		for i, x := range vals {
			col[i] = cell.Num(float64(x % 8))
			h.Add(i, col[i])
		}
		q := cell.Num(float64(query % 8))
		lo := int(lo8) % (len(vals) + 1)
		hi := int(hi8) % (len(vals) + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		wantCount, wantFirst, found := 0, -1, false
		for i := lo; i <= hi && i < len(col); i++ {
			if col[i].Equal(q) {
				wantCount++
				if !found {
					wantFirst, found = i, true
				}
			}
		}
		gotCount, _ := h.Count(q, lo, hi)
		gotFirst, _, gotOK := h.FirstRow(q, lo, hi)
		if gotCount != wantCount || gotOK != found {
			return false
		}
		return !found || gotFirst == wantFirst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBTreeOrderedIteration(t *testing.T) {
	bt := NewBTree(4)
	r := rand.New(rand.NewSource(1))
	const n = 1000
	for i := 0; i < n; i++ {
		bt.Add(i, cell.Num(float64(r.Intn(100))))
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d", bt.Len())
	}
	prev := cell.Num(-1)
	count := 0
	bt.Each(func(v cell.Value, row int) bool {
		if v.Compare(prev) < 0 {
			t.Fatalf("out of order: %v after %v", v, prev)
		}
		prev = v
		count++
		return true
	})
	if count != n {
		t.Errorf("visited %d", count)
	}
}

func TestBTreeCountMatchesNaive(t *testing.T) {
	f := func(vals []uint8, q uint8) bool {
		bt := NewBTree(6)
		for i, x := range vals {
			bt.Add(i, cell.Num(float64(x%16)))
		}
		query := cell.Num(float64(q % 16))
		wantLE, wantLT := 0, 0
		for _, x := range vals {
			v := float64(x % 16)
			if v <= query.Num {
				wantLE++
			}
			if v < query.Num {
				wantLT++
			}
		}
		le, _ := bt.CountLE(query)
		lt, _ := bt.CountLT(query)
		return le == wantLE && lt == wantLT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBTreeFloor(t *testing.T) {
	bt := NewBTree(4)
	for i, x := range []float64{10, 20, 30, 40} {
		bt.Add(i, cell.Num(x))
	}
	v, row, _, ok := bt.Floor(cell.Num(25))
	if !ok || v.Num != 20 || row != 1 {
		t.Errorf("Floor(25) = %v row=%d ok=%v", v, row, ok)
	}
	if _, _, _, ok := bt.Floor(cell.Num(5)); ok {
		t.Error("Floor below minimum should miss")
	}
	v, _, _, ok = bt.Floor(cell.Num(40))
	if !ok || v.Num != 40 {
		t.Errorf("Floor(40) = %v", v)
	}
}

func TestBTreeRemove(t *testing.T) {
	bt := NewBTree(4)
	for i := 0; i < 200; i++ {
		bt.Add(i, cell.Num(float64(i%10)))
	}
	if !bt.Remove(15, cell.Num(5)) {
		t.Fatal("remove existing failed")
	}
	if bt.Remove(15, cell.Num(5)) {
		t.Error("double remove should fail")
	}
	if bt.Len() != 199 {
		t.Errorf("Len = %d", bt.Len())
	}
	le, _ := bt.CountLE(cell.Num(5))
	if le != 119 { // 6 values (0..5) x 20 each, minus the removed one
		t.Errorf("CountLE(5) = %d, want 119", le)
	}
	if bt.Contains(15, cell.Num(5)) {
		t.Error("Contains after remove")
	}
	if !bt.Contains(25, cell.Num(5)) {
		t.Error("other duplicates must survive")
	}
}

func TestBTreeAddRemoveProperty(t *testing.T) {
	type op struct {
		Add bool
		Row uint8
		Val uint8
	}
	f := func(ops []op) bool {
		bt := NewBTree(4)
		ref := make(map[[2]int]bool)
		for _, o := range ops {
			row, val := int(o.Row%32), float64(o.Val%8)
			key := [2]int{row, int(val)}
			if o.Add && !ref[key] {
				bt.Add(row, cell.Num(val))
				ref[key] = true
			} else if !o.Add && ref[key] {
				if !bt.Remove(row, cell.Num(val)) {
					return false
				}
				delete(ref, key)
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		for key := range ref {
			if !bt.Contains(key[0], cell.Num(float64(key[1]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBTreeDepthLogarithmic(t *testing.T) {
	bt := NewBTree(32)
	for i := 0; i < 100000; i++ {
		bt.Add(i, cell.Num(float64(i)))
	}
	if d := bt.Depth(); d > 6 {
		t.Errorf("Depth = %d for 100k order-32 inserts", d)
	}
	_, probes := bt.CountLE(cell.Num(50000))
	if probes > 10 {
		t.Errorf("CountLE probes = %d, want logarithmic", probes)
	}
}

func TestInvertedIndex(t *testing.T) {
	ix := NewInverted()
	a1 := cell.Addr{Row: 0, Col: 0}
	a2 := cell.Addr{Row: 1, Col: 0}
	ix.Add(a1, "heavy STORM warning")
	ix.Add(a2, "storm")
	if ix.Tokens() != 4 || ix.DistinctTokens() != 3 {
		t.Fatalf("Tokens=%d Distinct=%d", ix.Tokens(), ix.DistinctTokens())
	}
	hits, probes := ix.Lookup("STORM")
	if len(hits) != 2 || probes != 1 {
		t.Errorf("Lookup = %v probes=%d", hits, probes)
	}
	// Nonexistent value: near-constant miss (§5.1.2).
	hits, probes = ix.Lookup("tornado")
	if len(hits) != 0 || probes != 1 {
		t.Errorf("miss = %v probes=%d", hits, probes)
	}
	ix.Replace(a2, "storm", "rain")
	hits, _ = ix.Lookup("storm")
	if len(hits) != 1 || hits[0] != a1 {
		t.Errorf("after replace: %v", hits)
	}
	ix.Remove(a1, "heavy STORM warning")
	if hits, _ := ix.Lookup("storm"); len(hits) != 0 {
		t.Errorf("after remove: %v", hits)
	}
}

func TestInvertedMultiToken(t *testing.T) {
	ix := NewInverted()
	a1 := cell.Addr{Row: 0, Col: 0}
	a2 := cell.Addr{Row: 1, Col: 0}
	ix.Add(a1, "heavy storm")
	ix.Add(a2, "heavy rain")
	hits, _ := ix.Lookup("heavy storm")
	if len(hits) != 1 || hits[0] != a1 {
		t.Errorf("intersection = %v", hits)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Heavy STORM, 3.5in rain!")
	want := []string{"heavy", "storm", "3.5in", "rain"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q want %q", i, got[i], want[i])
		}
	}
}

func TestPrefixSums(t *testing.T) {
	vals := []float64{1, 2, 0, 4, 5}
	present := []bool{true, true, false, true, true}
	errs := []bool{false, false, true, false, false}
	p := NewPrefixSums(vals, present, errs)
	if p.Rows() != 5 {
		t.Fatal("Rows")
	}
	if got := p.Errors(0, 4); got != 1 {
		t.Errorf("Errors all = %v", got)
	}
	if got := p.Errors(3, 4); got != 0 {
		t.Errorf("Errors(3,4) = %v", got)
	}
	if got := p.Sum(0, 4); got != 12 {
		t.Errorf("Sum all = %v", got)
	}
	if got := p.Sum(1, 3); got != 6 {
		t.Errorf("Sum(1,3) = %v", got)
	}
	if got := p.Count(0, 4); got != 4 {
		t.Errorf("Count = %v", got)
	}
	if avg, ok := p.Average(0, 4); !ok || avg != 3 {
		t.Errorf("Average = %v,%v", avg, ok)
	}
	if _, ok := p.Average(2, 2); ok {
		t.Error("Average over non-numeric should miss")
	}
	// Clamping.
	if got := p.Sum(-5, 100); got != 12 {
		t.Errorf("clamped Sum = %v", got)
	}
	if got := p.Sum(3, 1); got != 0 {
		t.Errorf("inverted Sum = %v", got)
	}
	if p.Dirty() {
		t.Error("fresh prefix should be clean")
	}
	p.Update()
	if !p.Dirty() {
		t.Error("Update should mark dirty")
	}
}

func TestPrefixSumsMatchNaive(t *testing.T) {
	f := func(raw []uint8, lo8, hi8 uint8) bool {
		vals := make([]float64, len(raw))
		present := make([]bool, len(raw))
		for i, x := range raw {
			vals[i] = float64(x % 10)
			present[i] = x%3 != 0
		}
		p := NewPrefixSums(vals, present, nil)
		lo := int(lo8) % (len(raw) + 1)
		hi := int(hi8) % (len(raw) + 1)
		var wantSum float64
		wantCount := 0
		for i := lo; i <= hi && i < len(raw); i++ {
			if present[i] {
				wantSum += vals[i]
				wantCount++
			}
		}
		return p.Sum(lo, hi) == wantSum && p.Count(lo, hi) == wantCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBTreeReplace(t *testing.T) {
	bt := NewBTree(2) // clamps to minimum order 4
	bt.Add(1, cell.Num(5))
	bt.Replace(1, cell.Num(5), cell.Num(9))
	if bt.Contains(1, cell.Num(5)) || !bt.Contains(1, cell.Num(9)) {
		t.Error("Replace did not swap the pair")
	}
	if bt.Len() != 1 {
		t.Errorf("Len = %d", bt.Len())
	}
}

func TestInvertedLookupSubstring(t *testing.T) {
	ix := NewInverted()
	a1 := cell.Addr{Row: 0, Col: 0}
	a2 := cell.Addr{Row: 1, Col: 0}
	a3 := cell.Addr{Row: 2, Col: 0}
	ix.Add(a1, "XSNOW warning")
	ix.Add(a2, "SNOW")
	ix.Add(a3, "RAIN")

	// Substring semantics: "SNOW" matches both the exact token and the
	// token containing it.
	hits, probes := ix.LookupSubstring("SNOW")
	if len(hits) != 2 {
		t.Errorf("hits = %v", hits)
	}
	// Probes are bounded by the vocabulary, not the cell count (§5.1.2).
	if probes != ix.DistinctTokens() {
		t.Errorf("probes = %d, want %d", probes, ix.DistinctTokens())
	}
	if hits, _ := ix.LookupSubstring("QQNO"); len(hits) != 0 {
		t.Errorf("absent = %v", hits)
	}
	// Multi-token queries fall back to exact intersection.
	if hits, _ := ix.LookupSubstring("XSNOW warning"); len(hits) != 1 || hits[0] != a1 {
		t.Errorf("multi-token = %v", hits)
	}
}
