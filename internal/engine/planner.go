package engine

import (
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sheet"
)

// This file is the consumption side of the cost-based planner
// (internal/plan). Plans follow the same lifecycle as the value
// certificates (valuecert.go): derived uncharged (planning is static
// analysis over stored values and formula ASTs — the same work a real
// engine's optimizer does off the metered path), keyed by the versions
// they were derived under, and refreshed once they go stale.
//
// Two guards bound the refresh cost:
//
//   - Validity is keyed on per-sheet GRAPH versions plus the versions of
//     exactly the columns whose statistics the plan consulted — NOT the raw
//     optState version, which bumps on every cached write a recalculation
//     makes and would force O(n) rebuilds per pass.
//   - A plan is rebuilt at most once per engine operation (opSeq): the
//     first consult after an edit re-plans against fresh statistics, and
//     every later consult in the same operation reuses that plan even if
//     the operation keeps mutating. A stale plan is safe — it is advisory
//     for cost only; every fast path keeps its own soundness guard.

// planEntry is one derived plan plus the versions it was built under.
type planEntry struct {
	plan *plan.Plan
	// graphVers invalidates on formula-set edits per sheet.
	graphVers map[*sheet.Sheet]int64
	// statVers invalidates on changes to the columns whose statistics the
	// plan consulted (colVer closed over the reorder epoch).
	statVers []plan.StatColumn
	// builtAt is the operation sequence number the plan was built during;
	// rebuilds are suppressed until the next operation.
	builtAt int64
	// validatedAt memoizes a successful (or suppressed) validity check per
	// operation, so per-lookup consults don't re-walk the version lists.
	validatedAt int64
}

// colVersion is the statistics invalidation key for one column: the
// optState column version closed over the reorder epoch (a sort moves
// values between rows without routing them through noteCellChange, so the
// epoch is what retires a never-written column's statistics).
func (e *Engine) colVersion(name string, col int) int64 {
	s := e.wb.Sheet(name)
	if s == nil {
		return 0
	}
	st := e.opts[s]
	if st == nil {
		return 0
	}
	return st.sortedEpoch<<32 | (st.colVer[col] & 0xffffffff)
}

// currentPlan returns a plan entry to consult, validating the cached one
// and rebuilding it when stale — at most once per operation.
func (e *Engine) currentPlan() *planEntry {
	if !e.prof.Opt.CostPlanner {
		return nil
	}
	pe := e.planEntry
	if pe != nil {
		if pe.validatedAt == e.opSeq {
			return pe
		}
		if e.planEntryValid(pe) || pe.builtAt == e.opSeq {
			pe.validatedAt = e.opSeq
			return pe
		}
	}
	return e.rebuildPlan()
}

// planEntryValid re-checks the versions a plan entry was derived under.
func (e *Engine) planEntryValid(pe *planEntry) bool {
	for s, v := range pe.graphVers {
		if e.graph(s).Version() != v {
			return false
		}
	}
	for _, sc := range pe.statVers {
		if e.colVersion(sc.Sheet, sc.Col) != sc.Version {
			return false
		}
	}
	return true
}

// rebuildPlan derives a fresh plan from current statistics. The statistics
// cache persists across rebuilds, so only columns whose version moved are
// recollected.
func (e *Engine) rebuildPlan() *planEntry {
	sp := obs.Start("engine.plan_build")
	defer sp.End()
	if e.planCache == nil {
		e.planCache = plan.NewCache()
	}
	p := plan.Build(e.wb, plan.Options{
		Coeff:      e.prof.Coeff,
		Cache:      e.planCache,
		ColVersion: e.colVersion,
	})
	pe := &planEntry{
		plan:        p,
		graphVers:   make(map[*sheet.Sheet]int64, e.wb.Len()),
		statVers:    p.StatColumns(),
		builtAt:     e.opSeq,
		validatedAt: e.opSeq,
	}
	for _, s := range e.wb.Sheets() {
		pe.graphVers[s] = e.graph(s).Version()
	}
	e.planEntry = pe
	e.met.planBuilds.Add(1)
	sp.Int("choices", int64(len(p.Choices())))
	return pe
}

// plannedSheet returns the sheet's plan section, or nil when the profile
// has no planner (callers then keep the hard-wired behavior).
func (e *Engine) plannedSheet(s *sheet.Sheet) *plan.SheetPlan {
	pe := e.currentPlan()
	if pe == nil {
		return nil
	}
	return pe.plan.SheetPlan(s.Name)
}

// Plan returns the engine's current cost-based plan, deriving or
// refreshing it as needed; nil when the profile has no planner. The CLI's
// plan command and tests read it.
func (e *Engine) Plan() *plan.Plan {
	pe := e.currentPlan()
	if pe == nil {
		return nil
	}
	return pe.plan
}

// plannedBinarySearch gates the sortedness-certificate fast path: when the
// planner chose a different strategy for this exact-lookup site, the
// binary search is vetoed and the lookup falls through to the scan. Sites
// the plan doesn't cover keep the hard-wired behavior. (Under the planned
// profile approximate lookups never reach the certificate — the
// ApproxBinarySearch policy short-circuits first — so the site is keyed
// exact.)
func (e *Engine) plannedBinarySearch(s *sheet.Sheet, col, r0, r1 int) bool {
	sp := e.plannedSheet(s)
	if sp == nil {
		return true
	}
	strat, ok := sp.LookupStrategy(col, r0, r1, true)
	return !ok || strat == plan.BinarySearch
}

// plannedHashProbe gates the column-index probe for an exact lookup site
// (formula.IndexAdvisor): a veto must land before the probe, because a
// probe miss is authoritative (#N/A) and never falls back to the scan.
func (e *Engine) plannedHashProbe(s *sheet.Sheet, col, r0, r1 int) bool {
	sp := e.plannedSheet(s)
	if sp == nil {
		return true
	}
	strat, ok := sp.LookupStrategy(col, r0, r1, true)
	return !ok || strat == plan.HashProbe
}

// plannedCountIfIndex gates COUNTIF's index service for one column.
func (e *Engine) plannedCountIfIndex(s *sheet.Sheet, col int) bool {
	sp := e.plannedSheet(s)
	return sp == nil || sp.CountIfIndexed(col)
}

// plannedPrefix gates the prefix-sum aggregate service for one column.
func (e *Engine) plannedPrefix(s *sheet.Sheet, col int) bool {
	sp := e.plannedSheet(s)
	return sp == nil || sp.PrefixServe(col)
}

// plannedRegionChain gates region-level recalculation sequencing.
func (e *Engine) plannedRegionChain(s *sheet.Sheet) bool {
	sp := e.plannedSheet(s)
	return sp == nil || sp.UseRegionChain()
}

// plannedDeltas gates O(1) aggregate maintenance on edits.
func (e *Engine) plannedDeltas(s *sheet.Sheet) bool {
	sp := e.plannedSheet(s)
	return sp == nil || sp.UseDeltas()
}

// plannedEagerCols returns the prefix-index columns the plan schedules for
// the install-time build (replacing the hard-wired shared-aggregate
// threshold).
func (e *Engine) plannedEagerCols(s *sheet.Sheet) []int {
	sp := e.plannedSheet(s)
	if sp == nil {
		return nil
	}
	return sp.EagerIndexCols()
}
