// Interactive: the §6 "Additional Optimizations" toolkit in action —
// asynchronous recalculation with a progress bar (the anti-freeze direction
// [22]), online-aggregation style approximate answers with confidence
// intervals [27, 28], and formula-to-SQL translation for a database backend
// [21, 25, 30].
//
// Run: go run ./examples/interactive [rows]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	spreadbench "repro"
	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/sqlgen"
	"repro/internal/workload"
)

func main() {
	rows := 100_000
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil && n > 0 {
			rows = n
		}
	}

	sys, err := spreadbench.NewSystem("excel")
	if err != nil {
		log.Fatal(err)
	}
	wb := spreadbench.WeatherWorkbook(rows, true)
	if err := sys.Install(wb); err != nil {
		log.Fatal(err)
	}
	s := wb.First()

	// 1. Asynchronous recalculation: control returns immediately; the
	// visible window computes first.
	fmt.Printf("1. async recalculation of %d embedded formulae\n", s.FormulaCount())
	async, err := sys.RecalculateAsync(s)
	if err != nil {
		log.Fatal(err)
	}
	for {
		done, total := async.Progress()
		fmt.Printf("   [%-30s] %d/%d  window ready: %v\n",
			strings.Repeat("#", int(30*done/max64(total, 1))), done, total, async.WindowReady())
		if done >= total {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := async.Wait(); err != nil {
		log.Fatal(err)
	}

	// 2. Approximate aggregation: estimate the storm count from a sample,
	// then compare against the exact scan.
	fmt.Println("\n2. online-aggregation style COUNTIF with confidence intervals")
	rng := cell.ColRange(workload.ColStorm, 1, rows)
	for _, sample := range []int{500, 5_000, rows} {
		res, err := sys.ApproxAggregate(s, "COUNTIF", rng, spreadbench.Num(1), sample)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   sample %6d/%d: storms = %8.0f +- %-7.0f (cost %s)\n",
			res.SampledRows, res.TotalRows, res.Estimate, res.Margin,
			spreadbench.FormatDuration(res.Cost.Sim))
	}
	exact, r, err := sys.InsertFormula(s, spreadbench.Cell("R2"),
		fmt.Sprintf("=COUNTIF(J2:J%d,1)", rows+1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   exact scan:        storms = %8s            (cost %s)\n",
		exact.AsString(), spreadbench.FormatDuration(r.Sim))

	// 3. Formula -> SQL: what a database backend would run instead.
	fmt.Println("\n3. translating the workload to SQL (§6: 'a join instead of a")
	fmt.Println("   collection of VLOOKUPs')")
	schema := sqlgen.SchemaOf(s, "weather")
	for _, text := range []string{
		fmt.Sprintf("=COUNTIF(J2:J%d,1)", rows+1),
		fmt.Sprintf(`=SUMIF(B2:B%d,"SD",J2:J%d)`, rows+1, rows+1),
		fmt.Sprintf("=VLOOKUP(%d,A2:Q%d,2,FALSE)", rows/2, rows+1),
	} {
		c := formula.MustCompile(text)
		sql, err := sqlgen.TranslateFormula(schema, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-38s -> %s\n", text, sql)
	}
	scores := sqlgen.Schema{Table: "scores", Columns: []string{"student", "score"}}
	grades := sqlgen.Schema{Table: "grades", Columns: []string{"floor", "grade"}}
	join, err := sqlgen.TranslateVlookupColumn(scores, 1, grades, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %-38s -> %s\n", "a COLUMN of VLOOKUPs", join)

	// 4. Multi-threaded recalculation (the Excel 2016 option of §3.3).
	fmt.Println("\n4. multi-threaded recalculation (disabled by default in Excel)")
	eng := sys
	serialStart := time.Now()
	if _, err := eng.Recalculate(s); err != nil {
		log.Fatal(err)
	}
	serial := time.Since(serialStart)
	parStart := time.Now()
	if _, err := eng.RecalculateParallel(s, 4); err != nil {
		log.Fatal(err)
	}
	par := time.Since(parStart)
	fmt.Printf("   serial wall %v, 4-worker wall %v (identical results)\n",
		serial.Round(time.Millisecond), par.Round(time.Millisecond))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
