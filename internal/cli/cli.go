// Package cli implements the shared command-line driver behind cmd/bct and
// cmd/oot.
package cli

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// writeFile creates path and streams fn's output through a buffered writer,
// surfacing write, flush, and close errors alike (result files land on real
// disks that fill up; a dropped close error hides a truncated file).
func writeFile(path string, fn func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriter(f)
	if err := fn(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// Main parses os.Args, runs the benchmark suite of the given kind ("bct",
// "oot", or "all"), renders the figures to stdout, and exits the process on
// error.
func Main(kind string) {
	if err := Run(kind, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", kind, err)
		os.Exit(1)
	}
}

// Run is the testable driver: it parses args, executes the selected
// experiments, and writes the report to out and progress to errw.
func Run(kind string, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet(kind, flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		full       = fs.Bool("full", false, "use the paper's full experimental parameters (§3.3); multi-hour run")
		trials     = fs.Int("trials", 0, "trials per measurement (default: 5 quick, 10 full)")
		maxRows    = fs.Int("maxrows", 0, "cap desktop sweep sizes (default: 50k quick, 500k full)")
		maxRowsWeb = fs.Int("maxrows-web", 0, "cap web-system sweep sizes (default: 30k quick, 90k full)")
		systems    = fs.String("systems", "", "comma-separated profiles (default excel,calc,sheets; add optimized for §6 runs)")
		expID      = fs.String("exp", "", "run a single experiment by ID (e.g. fig7-countif)")
		csvDir     = fs.String("csv", "", "also write one CSV per experiment into this directory")
		quiet      = fs.Bool("quiet", false, "suppress progress lines")
		list       = fs.Bool("list", false, "list experiment IDs and exit")
		sidecar    = fs.String("sidecar", "", "write an observability sidecar JSON (metrics + SLO verdicts) to this path")
		traceOut   = fs.String("trace", "", "write a Chrome trace-event JSON of the run to this path")
		debugAddr  = fs.String("debug-addr", "", "serve net/http/pprof and an OpenMetrics /metrics endpoint on this address for the run (off by default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Fprintf(out, "%-18s %-4s %s\n", e.ID, e.Kind, e.Title)
		}
		return nil
	}

	cfg := core.DefaultConfig()
	if *full {
		cfg = core.PaperConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *maxRows > 0 {
		cfg.MaxRows = *maxRows
	}
	if *maxRowsWeb > 0 {
		cfg.MaxRowsWeb = *maxRowsWeb
	}
	if *systems != "" {
		cfg.Systems = strings.Split(*systems, ",")
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(errw, "  "+format+"\n", args...)
		}
	}

	// Observability: either output flag turns the whole layer on for the
	// run. Tracing stays off otherwise, keeping the engines on the
	// zero-allocation span path the benchmarks are calibrated against.
	observing := *sidecar != "" || *traceOut != ""
	if observing {
		obs.Reset()
		obs.Default.ResetValues()
		obs.DefaultDrift.Reset()
		obs.SetEnabled(true)
		defer obs.SetEnabled(false)
	}

	if *debugAddr != "" {
		bound, stop, err := startDebugServer(*debugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer stop()
		if !*quiet {
			fmt.Fprintf(errw, "debug server on http://%s (pprof under /debug/pprof/, OpenMetrics at /metrics)\n", bound)
		}
	}

	results := make(map[string]*core.Result)
	runOne := func(e core.Experiment) error {
		if !*quiet {
			fmt.Fprintf(errw, "running %s (%s)\n", e.ID, e.Title)
		}
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		results[e.ID] = res
		return nil
	}

	if *expID != "" {
		e, ok := core.FindExperiment(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q; use -list", *expID)
		}
		if err := runOne(e); err != nil {
			return err
		}
	} else {
		for _, e := range core.Experiments() {
			if kind == "all" || e.Kind == kind {
				if err := runOne(e); err != nil {
					return err
				}
			}
		}
	}

	if kind != "oot" && *expID == "" {
		core.WriteTaxonomy(out)
	}
	for _, e := range core.Experiments() {
		res, ok := results[e.ID]
		if !ok {
			continue
		}
		if err := report.WriteFigure(out, fmt.Sprintf("%s: %s", res.ID, res.Title), res.Series, res.Notes...); err != nil {
			return err
		}
	}
	if _, haveOpen := results["fig2-open"]; haveOpen && *expID == "" {
		if err := report.WriteTable2(out, core.Table2(results, cfg.Systems), cfg.Systems); err != nil {
			return err
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for id, res := range results {
			path := filepath.Join(*csvDir, id+".csv")
			if err := writeFile(path, func(w io.Writer) error {
				return report.WriteCSV(w, res.Series)
			}); err != nil {
				return err
			}
			if !*quiet {
				fmt.Fprintf(errw, "wrote %s\n", path)
			}
		}
	}

	if observing {
		if err := writeObservability(kind, cfg.Systems, *sidecar, *traceOut, out, errw, *quiet); err != nil {
			return err
		}
	}
	return nil
}

// writeObservability drains the run's trace, surfaces the interactivity SLO
// verdicts in the report output, and emits the requested sidecar/trace
// files. Operations are judged on the simulated clock (the paper-comparable
// latency each op span carries as an attribute) against the 500 ms bound.
func writeObservability(kind string, systems []string, sidecarPath, tracePath string, out, errw io.Writer, quiet bool) error {
	tr := obs.Take()
	rep := obs.CheckTrace(tr, obs.DefaultSLOBound)
	if err := rep.WriteText(out); err != nil {
		return err
	}

	if tracePath != "" {
		if err := writeFile(tracePath, tr.WriteChromeJSON); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(errw, "wrote %s\n", tracePath)
		}
	}
	if sidecarPath != "" {
		sc := &obs.Sidecar{
			Kind:         kind,
			Systems:      systems,
			SLO:          rep,
			Metrics:      obs.Default.Snapshot(),
			Spans:        tr.Spans,
			SpansDropped: tr.Dropped,
			TraceFile:    tracePath,
		}
		// The plan-drift section appears only when some planner gate
		// actually observed a prediction (a cost-planned profile ran).
		if drift := obs.DefaultDrift.Report(); len(drift.Gates) > 0 {
			sc.Drift = drift
		}
		if err := writeFile(sidecarPath, func(w io.Writer) error {
			return obs.WriteSidecar(w, sc)
		}); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(errw, "wrote %s\n", sidecarPath)
		}
	}
	return nil
}
