package regions

import (
	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/obs"
)

// The compressed dependency graph. Because regions are vertical runs, a
// relative reference's column offset is constant across a region; only row
// coordinates slide with the host. Each precedent of a region therefore
// collapses to one interval edge: a coverage rectangle plus a relation
// mapping a dirty precedent row p to the dependent rows it invalidates.
//
//	sliding     rows [p-hi, p-lo]     both endpoints relative
//	lowerFixed  rows [p-hi, End]      anchored top (running totals)
//	upperFixed  rows [Start, p-lo]    anchored bottom
//	whole       rows [Start, End]     fixed precedents
//
// The relations are monotone in p, so a dirty *interval* maps to the image
// of its endpoints — dirty-propagation works on intervals, never cells.

type relKind uint8

const (
	relSliding relKind = iota
	relLowerFixed
	relUpperFixed
	relWhole
)

// depRec is one interval edge: any dirty cell inside rect invalidates rows
// of region `to` per the relation.
type depRec struct {
	rect   cell.Range
	to     int
	rel    relKind
	lo, hi int // row offsets of the reference relative to its host row
}

// Graph is the region-level dependency graph of one sheet.
type Graph struct {
	sr   *SheetRegions
	deps []depRec
	// order is a topological order of region indices; dir[i] is +1 when
	// region i must evaluate top-down, -1 bottom-up.
	order []int
	dir   []int8
	// selfDown/selfUp: region i has a self-edge pushing dirt toward its
	// end/start; dirty intervals extend there in O(1) instead of crawling.
	selfDown, selfUp []bool
	cross            [][2]int
	ok               bool
	ops              int64
}

// Build derives the region graph. When the regions cannot be sequenced —
// a region-level cycle, or a region whose self-reference pattern has no
// consistent direction — OK() reports false and callers must fall back to
// the per-cell graph; Build never guesses.
func Build(sr *SheetRegions) *Graph {
	sp := obs.Start("regions.build").Int("regions", int64(len(sr.Regions)))
	defer sp.End()
	g := &Graph{
		sr:       sr,
		dir:      make([]int8, len(sr.Regions)),
		selfDown: make([]bool, len(sr.Regions)),
		selfUp:   make([]bool, len(sr.Regions)),
		ok:       true,
	}
	for di := range sr.Regions {
		g.addRegionDeps(di)
	}
	g.sequence()
	return g
}

// rowEnd is one endpoint of a reference's row coordinate: a fixed absolute
// row, or an offset from the host row.
type rowEnd struct {
	abs bool
	v   int
}

// addRegionDeps walks the dependent region's representative AST and emits
// one depRec per reference.
func (g *Graph) addRegionDeps(di int) {
	d := g.sr.Regions[di]
	cls := g.sr.Classes[d.Class]
	org := cls.Origin
	emit := func(from, to cell.Ref) {
		g.ops++
		fr := rowEndOf(from, org)
		tr := rowEndOf(to, org)
		c1 := colOf(from, org, d.Col)
		c2 := colOf(to, org, d.Col)
		if c2 < c1 {
			c1, c2 = c2, c1
		}
		if c2 < 0 {
			return // entirely off-sheet: no live precedent cells
		}
		if c1 < 0 {
			c1 = 0
		}
		rec, ok := classifyRows(fr, tr, d)
		if !ok {
			return
		}
		rec.to = di
		rec.rect.Start.Col, rec.rect.End.Col = c1, c2
		g.deps = append(g.deps, rec)
		g.noteSelf(di, rec)
	}
	formula.Walk(cls.Code.Root, func(n formula.Node) {
		switch t := n.(type) {
		case formula.RefNode:
			emit(t.Ref, t.Ref)
		case formula.RangeNode:
			emit(t.From, t.To)
		}
	})
}

func rowEndOf(r cell.Ref, org cell.Addr) rowEnd {
	if r.AbsRow {
		return rowEnd{abs: true, v: r.Addr.Row}
	}
	return rowEnd{v: r.Addr.Row - org.Row}
}

func colOf(r cell.Ref, org cell.Addr, hostCol int) int {
	if r.AbsCol {
		return r.Addr.Col
	}
	return hostCol + (r.Addr.Col - org.Col)
}

// classifyRows derives the row relation and coverage for one reference of
// region d; ok is false when the precedent rows are entirely off-sheet.
func classifyRows(f, t rowEnd, d Region) (depRec, bool) {
	var rec depRec
	switch {
	case !f.abs && !t.abs:
		lo, hi := f.v, t.v
		if hi < lo {
			lo, hi = hi, lo
		}
		rec.rel = relSliding
		rec.lo, rec.hi = lo, hi
		rec.rect.Start.Row, rec.rect.End.Row = d.Start+lo, d.End+hi
	case f.abs && t.abs:
		lo, hi := f.v, t.v
		if hi < lo {
			lo, hi = hi, lo
		}
		rec.rel = relWhole
		rec.rect.Start.Row, rec.rect.End.Row = lo, hi
	default:
		a, o := f.v, t.v
		if !f.abs {
			a, o = t.v, f.v
		}
		// One anchored endpoint, one sliding. If the sliding endpoint
		// stays on one side of the anchor across the whole region the
		// relation is lower/upper-fixed; if it crosses, fall back to the
		// whole-region relation (sound, rarely less precise).
		switch {
		case a <= d.Start+o:
			rec.rel = relLowerFixed
			rec.hi = o
			rec.rect.Start.Row, rec.rect.End.Row = a, d.End+o
		case a >= d.End+o:
			rec.rel = relUpperFixed
			rec.lo = o
			rec.rect.Start.Row, rec.rect.End.Row = d.Start+o, a
		default:
			rec.rel = relWhole
			rec.rect.Start.Row, rec.rect.End.Row = minInt(a, d.Start+o), maxInt(a, d.End+o)
		}
	}
	if rec.rect.End.Row < 0 {
		return rec, false
	}
	if rec.rect.Start.Row < 0 {
		rec.rect.Start.Row = 0
	}
	return rec, true
}

// noteSelf records self-edge effects: evaluation-direction constraints and
// the O(1) dirty-closure flags. A self-edge with no consistent direction
// (it can read the host's own cell, or both sides at once) makes the region
// unsequencable.
func (g *Graph) noteSelf(di int, rec depRec) {
	d := g.sr.Regions[di]
	if d.Col < rec.rect.Start.Col || d.Col > rec.rect.End.Col {
		return
	}
	if rec.rect.End.Row < d.Start || rec.rect.Start.Row > d.End {
		return
	}
	down, up, bad := false, false, false
	switch rec.rel {
	case relSliding:
		switch {
		case rec.hi < 0:
			down = true // reads strictly above: dirt flows downward
		case rec.lo > 0:
			up = true
		default:
			bad = true // offset 0 in range: the cell reads itself
		}
	case relLowerFixed:
		if rec.hi < 0 {
			down = true // running total: reads [anchor, host-1]
		} else {
			bad = true
		}
	case relUpperFixed:
		if rec.lo > 0 {
			up = true
		} else {
			bad = true
		}
	case relWhole:
		bad = true
	}
	if bad {
		g.ok = false
		return
	}
	if down {
		g.selfDown[di] = true
		if g.dir[di] < 0 {
			g.ok = false
		}
		g.dir[di] = 1
	}
	if up {
		g.selfUp[di] = true
		if g.dir[di] > 0 {
			g.ok = false
		}
		g.dir[di] = -1
	}
}

// sequence runs Kahn's algorithm over the cross-region edges. Determinism:
// among ready regions the smallest index (row-major by construction) is
// emitted first. Any region-level cycle — even one the per-cell graph would
// resolve — clears ok; the engine then falls back wholly to the per-cell
// path, so cyclic sheets always take identical code on both engines.
func (g *Graph) sequence() {
	n := len(g.sr.Regions)
	indeg := make([]int, n)
	adj := make([][]int, n)
	seen := make(map[[2]int]bool)
	for _, rec := range g.deps {
		for pi, p := range g.sr.Regions {
			g.ops++
			if pi == rec.to {
				continue
			}
			if p.Col < rec.rect.Start.Col || p.Col > rec.rect.End.Col {
				continue
			}
			if p.End < rec.rect.Start.Row || p.Start > rec.rect.End.Row {
				continue
			}
			key := [2]int{pi, rec.to}
			if seen[key] {
				continue
			}
			seen[key] = true
			adj[pi] = append(adj[pi], rec.to)
			indeg[rec.to]++
			g.cross = append(g.cross, key)
		}
	}
	g.order = make([]int, 0, n)
	emitted := make([]bool, n)
	for len(g.order) < n {
		next := -1
		for i := 0; i < n; i++ {
			g.ops++
			if !emitted[i] && indeg[i] == 0 {
				next = i
				break
			}
		}
		if next < 0 {
			g.ok = false // region-level cycle
			return
		}
		emitted[next] = true
		g.order = append(g.order, next)
		for _, to := range adj[next] {
			indeg[to]--
		}
	}
}

// OK reports whether region-level sequencing is valid for this sheet. When
// false the per-cell graph must be used; when true the per-cell graph is
// provably acyclic (every per-cell edge induces a region edge, and all
// region edges are ordered), so the region path never has to report
// #CYCLE! cells.
func (g *Graph) OK() bool { return g.ok }

// Regions returns the underlying inference result.
func (g *Graph) Regions() *SheetRegions { return g.sr }

// EdgeCount returns interval-edge counts: total depRecs and deduplicated
// cross-region edges.
func (g *Graph) EdgeCount() (deps, cross int) { return len(g.deps), len(g.cross) }

// CrossEdges returns the deduplicated cross-region (from, to) edges the
// sequencing pass discovered — an independent derivation of the dependency
// relation the engine's certificate-checked scheduler validates parallel
// stages against. Callers must not mutate the result.
func (g *Graph) CrossEdges() [][2]int { return g.cross }

// RegionCells appends region ri's cells in its required evaluation
// direction — the per-stage work lists the certificate scheduler executes.
func (g *Graph) RegionCells(out []cell.Addr, ri int) []cell.Addr {
	r := g.sr.Regions[ri]
	return g.appendRows(out, ri, r.Start, r.End)
}

// Ops returns the accumulated work counter (graph build plus any Order /
// DirtyFrom calls since the last ResetOps).
func (g *Graph) Ops() int64 { return g.ops }

// ResetOps zeroes the work counter.
func (g *Graph) ResetOps() { g.ops = 0 }

// Order returns the full calculation chain: every formula cell, each region
// contiguous, regions in topological order, rows in each region's required
// direction. Callers must not mutate the result. Returns nil when OK() is
// false.
func (g *Graph) Order() []cell.Addr {
	if !g.ok {
		return nil
	}
	out := make([]cell.Addr, 0, g.sr.Formulas)
	for _, ri := range g.order {
		out = g.appendRows(out, ri, g.sr.Regions[ri].Start, g.sr.Regions[ri].End)
	}
	return out
}

func (g *Graph) appendRows(out []cell.Addr, ri, lo, hi int) []cell.Addr {
	r := g.sr.Regions[ri]
	g.ops += int64(hi - lo + 1) // chain emission: one op per cell written
	if g.dir[ri] < 0 {
		for row := hi; row >= lo; row-- {
			out = append(out, cell.Addr{Row: row, Col: r.Col})
		}
		return out
	}
	for row := lo; row <= hi; row++ {
		out = append(out, cell.Addr{Row: row, Col: r.Col})
	}
	return out
}

// DirtyFrom returns the transitive dependents of the changed cells in
// evaluation order — the region-level counterpart of graph.Dirty. The
// result is a superset of the per-cell dirty set (a region is re-evaluated
// in covering intervals), which is sound: re-evaluating a clean formula
// reproduces its value. Like graph.Dirty, the seeds themselves appear only
// if some changed cell reaches them. Returns nil when OK() is false.
func (g *Graph) DirtyFrom(changed []cell.Addr) []cell.Addr {
	if !g.ok {
		return nil
	}
	n := len(g.sr.Regions)
	// Per-region covering dirty interval; lo > hi means clean.
	lo := make([]int, n)
	hi := make([]int, n)
	for i := range lo {
		lo[i], hi[i] = 1, 0
	}
	var queue []int
	queued := make([]bool, n)
	merge := func(ri, l, h int) {
		r := g.sr.Regions[ri]
		if l < r.Start {
			l = r.Start
		}
		if h > r.End {
			h = r.End
		}
		if l > h {
			return
		}
		// O(1) self-edge closure: a region that feeds itself extends any
		// dirt to its boundary instead of crawling row by row.
		if g.selfDown[ri] {
			h = r.End
		}
		if g.selfUp[ri] {
			l = r.Start
		}
		if lo[ri] > hi[ri] {
			lo[ri], hi[ri] = l, h
		} else if l >= lo[ri] && h <= hi[ri] {
			return // already covered
		} else {
			lo[ri] = minInt(lo[ri], l)
			hi[ri] = maxInt(hi[ri], h)
		}
		if !queued[ri] {
			queued[ri] = true
			queue = append(queue, ri)
		}
	}
	// propagate pushes one dirty rectangle (col, rows [r0, r1]) across
	// every interval edge it intersects.
	propagate := func(col, r0, r1 int) {
		for _, rec := range g.deps {
			g.ops++
			if col < rec.rect.Start.Col || col > rec.rect.End.Col {
				continue
			}
			p0 := maxInt(r0, rec.rect.Start.Row)
			p1 := minInt(r1, rec.rect.End.Row)
			if p0 > p1 {
				continue
			}
			d := g.sr.Regions[rec.to]
			switch rec.rel {
			case relSliding:
				merge(rec.to, p0-rec.hi, p1-rec.lo)
			case relLowerFixed:
				merge(rec.to, p0-rec.hi, d.End)
			case relUpperFixed:
				merge(rec.to, d.Start, p1-rec.lo)
			case relWhole:
				merge(rec.to, d.Start, d.End)
			}
		}
	}
	for _, a := range changed {
		propagate(a.Col, a.Row, a.Row)
	}
	for len(queue) > 0 {
		ri := queue[0]
		queue = queue[1:]
		queued[ri] = false
		propagate(g.sr.Regions[ri].Col, lo[ri], hi[ri])
	}
	var out []cell.Addr
	for _, ri := range g.order {
		if lo[ri] <= hi[ri] {
			out = g.appendRows(out, ri, lo[ri], hi[ri])
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
