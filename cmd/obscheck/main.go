// Command obscheck validates the observability layer's machine-readable
// artifacts: runner sidecar JSON (-sidecar), Chrome trace-event JSON
// (-trace), the BENCH_engine.json benchmark record (-bench), and the
// BENCH_history.jsonl perf-trajectory log (-history). The bench-smoke CI
// stage runs it so a schema regression fails the build instead of
// silently corrupting the perf-trajectory record. Superseded schema
// versions and mixed-schema history files are rejected with errors that
// name the version (and line) at fault.
//
// Usage: obscheck [-sidecar file] [-trace file] [-bench file] [-history file]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/perfbase"
)

func main() {
	sidecar := flag.String("sidecar", "", "validate a runner sidecar JSON file")
	trace := flag.String("trace", "", "validate a Chrome trace-event JSON file")
	bench := flag.String("bench", "", "validate a BENCH_engine.json file")
	history := flag.String("history", "", "validate a BENCH_history.jsonl file")
	flag.Parse()
	if *sidecar == "" && *trace == "" && *bench == "" && *history == "" {
		fmt.Fprintln(os.Stderr, "obscheck: nothing to check; pass -sidecar, -trace, -bench, or -history")
		os.Exit(2)
	}
	if err := run(*sidecar, *trace, *bench, *history, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
		os.Exit(1)
	}
}

func run(sidecar, trace, bench, history string, out io.Writer) error {
	if sidecar != "" {
		data, err := os.ReadFile(sidecar)
		if err != nil {
			return err
		}
		sc, err := obs.ParseSidecar(data)
		if err != nil {
			return fmt.Errorf("%s: %w", sidecar, err)
		}
		drift := 0
		if sc.Drift != nil {
			drift = len(sc.Drift.Gates)
		}
		if _, err := fmt.Fprintf(out, "%s: ok (%s, %d span(s), %d SLO op(s), %d violation(s), %d latency instrument(s), %d drift gate(s))\n",
			sidecar, sc.Kind, sc.Spans, len(sc.SLO.Ops), sc.SLO.Violations, len(sc.Metrics.Latencies), drift); err != nil {
			return err
		}
	}
	if trace != "" {
		data, err := os.ReadFile(trace)
		if err != nil {
			return err
		}
		n, err := validateChromeTrace(data)
		if err != nil {
			return fmt.Errorf("%s: %w", trace, err)
		}
		if _, err := fmt.Fprintf(out, "%s: ok (%d trace event(s))\n", trace, n); err != nil {
			return err
		}
	}
	if bench != "" {
		data, err := os.ReadFile(bench)
		if err != nil {
			return err
		}
		bf, err := obs.ParseBenchFile(data)
		if err != nil {
			return fmt.Errorf("%s: %w", bench, err)
		}
		if _, err := fmt.Fprintf(out, "%s: ok (%d benchmark(s))\n", bench, len(bf.Benchmarks)); err != nil {
			return err
		}
	}
	if history != "" {
		data, err := os.ReadFile(history)
		if err != nil {
			return err
		}
		entries, err := perfbase.ReadHistory(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("%s: %w", history, err)
		}
		// Each entry embeds a full bench file; hold it to the same schema
		// bar as a standalone -bench document.
		for i, e := range entries {
			raw, err := json.Marshal(e.Bench)
			if err != nil {
				return fmt.Errorf("%s: entry %d: %w", history, i+1, err)
			}
			if _, err := obs.ParseBenchFile(raw); err != nil {
				return fmt.Errorf("%s: entry %d: %w", history, i+1, err)
			}
		}
		if _, err := fmt.Fprintf(out, "%s: ok (%d history entr(ies))\n", history, len(entries)); err != nil {
			return err
		}
	}
	return nil
}

// validateChromeTrace checks the minimal trace-event contract: an object
// with a traceEvents array of complete events carrying name/ph/ts/dur.
func validateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, err
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("no traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("event %d: empty name", i)
		}
		if ev.Ph != "X" {
			return 0, fmt.Errorf("event %d (%s): phase %q, want \"X\"", i, ev.Name, ev.Ph)
		}
		if ev.Ts == nil || ev.Dur == nil {
			return 0, fmt.Errorf("event %d (%s): missing ts or dur", i, ev.Name)
		}
		if *ev.Ts < 0 || *ev.Dur < 0 {
			return 0, fmt.Errorf("event %d (%s): negative ts or dur", i, ev.Name)
		}
	}
	return len(doc.TraceEvents), nil
}
