package cli

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestDebugServerServesMetricsAndPprof(t *testing.T) {
	obs.Default.ResetValues()
	obs.SetEnabled(true)
	obs.Default.Counter("cli_debug_test_events", "t").Add(3)
	obs.SetEnabled(false)

	addr, stop, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "openmetrics-text") {
		t.Errorf("metrics content type %q, want openmetrics-text", ctype)
	}
	if !strings.Contains(body, "cli_debug_test_events_total") {
		t.Errorf("metrics body missing the test counter:\n%s", body)
	}
	if !strings.HasSuffix(strings.TrimRight(body, "\n"), "# EOF") {
		t.Errorf("metrics body missing the # EOF terminator:\n%s", body)
	}

	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("pprof index looks wrong:\n%.200s", body)
	}
}

func TestDebugServerBadAddrFails(t *testing.T) {
	if _, stop, err := startDebugServer("256.0.0.1:bad"); err == nil {
		stop()
		t.Fatal("bad address accepted")
	}
}
