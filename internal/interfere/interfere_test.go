package interfere

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/regions"
	"repro/internal/sheet"
	"repro/internal/workload"
)

func at(s string) cell.Addr { return cell.MustParseAddr(s) }

// fillDown attaches one compiled formula across a column run with a shared
// origin — the workload's fill-down shape.
func fillDown(s *sheet.Sheet, text string, col, start, end int) {
	code := formula.MustCompile(text)
	org := cell.Addr{Row: start, Col: col}
	for r := start; r <= end; r++ {
		s.AttachFormula(cell.Addr{Row: r, Col: col}, sheet.Formula{Code: code, Origin: org})
	}
}

// The weather formula columns K..Q each COUNTIF a distinct data column:
// no formula region reads another formula region, so the whole sheet
// certifies as a single parallel stage.
func TestAnalyzeWeatherSingleStage(t *testing.T) {
	wb := workload.Weather(workload.Spec{Rows: 200, Seed: 7, Formulas: true})
	sr := regions.Infer(wb.First())
	c := Analyze(sr)

	if !c.OK {
		t.Fatalf("cert not OK; blockers: %+v", c.Blockers)
	}
	if len(c.Stages) != 1 || len(c.Stages[0]) != 7 {
		t.Fatalf("stages = %v, want one stage of 7 regions", c.Stages)
	}
	if len(c.Edges) != 0 {
		t.Fatalf("edges = %v, want none", c.Edges)
	}
	if c.Widest() != 7 || c.StageCount() != 1 {
		t.Fatalf("Widest=%d StageCount=%d, want 7/1", c.Widest(), c.StageCount())
	}
}

// A three-column fill chain (B reads A data, C reads B, D reads C) must
// stage the regions strictly in column order.
func TestAnalyzeChainStages(t *testing.T) {
	s := sheet.New("S", 50, 6)
	fillDown(s, "=A1*2", 1, 0, 39)
	fillDown(s, "=B1+1", 2, 0, 39)
	fillDown(s, "=C1-1", 3, 0, 39)
	c := Analyze(regions.Infer(s))

	if !c.OK {
		t.Fatalf("cert not OK; blockers: %+v", c.Blockers)
	}
	if want := [][]int{{0}, {1}, {2}}; !reflect.DeepEqual(c.Stages, want) {
		t.Fatalf("stages = %v, want %v", c.Stages, want)
	}
	if want := []Edge{{0, 1}, {1, 2}}; !reflect.DeepEqual(c.Edges, want) {
		t.Fatalf("edges = %v, want %v", c.Edges, want)
	}
}

// A region reading its own column (the cell above, a running-sum shape)
// keeps the self-read inside the region: intra-region ordering belongs to
// the region graph, so no cross-region edge and no blocker. The anchored
// running total over it still lands one stage later.
func TestAnalyzeSelfReadNoCrossEdge(t *testing.T) {
	s := sheet.New("S", 50, 6)
	fillDown(s, "=B1+A2", 1, 1, 39)
	fillDown(s, "=SUM($B$2:B2)", 2, 1, 39)
	c := Analyze(regions.Infer(s))

	if !c.OK {
		t.Fatalf("cert not OK; blockers: %+v", c.Blockers)
	}
	if want := [][]int{{0}, {1}}; !reflect.DeepEqual(c.Stages, want) {
		t.Fatalf("stages = %v, want %v", c.Stages, want)
	}
	if want := []Edge{{0, 1}}; !reflect.DeepEqual(c.Edges, want) {
		t.Fatalf("edges = %v, want %v", c.Edges, want)
	}
}

// The analysis summary block carries one of each blocker shape: a NOW()
// cell (unanalyzable), a cell reading it (tainted), and the deliberate
// S9/S10 cycle. All four must be reported; the clean summary rows must
// still stage, with the S2 consumer a stage later.
func TestAnalyzeWeatherAnalysisBlockers(t *testing.T) {
	wb := workload.Weather(workload.Spec{Rows: 200, Seed: 7, Formulas: true, Analysis: true})
	sr := regions.Infer(wb.First())
	c := Analyze(sr)

	if c.OK {
		t.Fatal("cert OK despite volatile and cyclic summary formulas")
	}
	byReason := map[string][]string{}
	for _, b := range c.Blockers {
		byReason[b.Reason] = append(byReason[b.Reason], b.Cell.A1())
	}
	if got := byReason["unanalyzable footprint (NOW)"]; !reflect.DeepEqual(got, []string{"S5"}) {
		t.Errorf("NOW blocker cells = %v, want [S5]", got)
	}
	if got := byReason["reads an unanalyzable region"]; !reflect.DeepEqual(got, []string{"S6"}) {
		t.Errorf("tainted blocker cells = %v, want [S6]", got)
	}
	if got := byReason["interference cycle"]; !reflect.DeepEqual(got, []string{"S9", "S10"}) {
		t.Errorf("cycle blocker cells = %v, want [S9 S10]", got)
	}
	// The storm total (S2) feeds storm total/day (S8): strictly later stage.
	s2 := sr.RegionFor(at("S2"))
	s8 := sr.RegionFor(at("S8"))
	if c.Stage[s2] < 0 || c.Stage[s8] < 0 || c.Stage[s2] >= c.Stage[s8] {
		t.Errorf("S2 stage %d, S8 stage %d; want S2 staged strictly before S8",
			c.Stage[s2], c.Stage[s8])
	}
}

func TestAnalyzeBlockerText(t *testing.T) {
	s := sheet.New("S", 20, 4)
	fillDown(s, "=RAND()", 1, 0, 9)
	c := Analyze(regions.Infer(s))
	if c.OK || len(c.Blockers) != 1 {
		t.Fatalf("blockers = %+v, want exactly one", c.Blockers)
	}
	b := c.Blockers[0]
	if !strings.Contains(b.Text, "RAND") {
		t.Errorf("blocker text %q does not name the formula", b.Text)
	}
	if b.Cell != at("B1") {
		t.Errorf("blocker cell = %s, want B1", b.Cell.A1())
	}
}

func TestCheckStages(t *testing.T) {
	s := sheet.New("S", 50, 6)
	fillDown(s, "=A1*2", 1, 0, 39)
	fillDown(s, "=B1+1", 2, 0, 39)
	fillDown(s, "=C1-1", 3, 0, 39)
	c := Analyze(regions.Infer(s))

	if bad := c.CheckStages([][2]int{{0, 1}, {0, 2}, {1, 2}}); bad != nil {
		t.Fatalf("forward edges reported as violations: %v", bad)
	}
	if bad := c.CheckStages([][2]int{{2, 0}}); len(bad) != 1 {
		t.Fatalf("backward edge not caught: %v", bad)
	}
	if bad := c.CheckStages([][2]int{{0, 7}}); len(bad) != 1 {
		t.Fatalf("out-of-range edge not caught: %v", bad)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	wb := workload.Weather(workload.Spec{Rows: 120, Seed: 3, Formulas: true, Analysis: true})
	sr := regions.Infer(wb.First())
	a, b := Analyze(sr), Analyze(sr)
	a.ResetOps()
	b.ResetOps()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("analysis not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestAnalyzeEmptySheet(t *testing.T) {
	c := Analyze(regions.Infer(sheet.New("S", 10, 4)))
	if !c.OK || len(c.Stages) != 0 || len(c.Edges) != 0 {
		t.Fatalf("empty sheet: %+v, want trivially OK with no stages", c)
	}
}
