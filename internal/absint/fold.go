package absint

import (
	"math"

	"repro/internal/cell"
	"repro/internal/formula"
)

// Checked constant folding: when every operand of an operator is a
// certified constant, the transfer runs a concrete mirror of the
// evaluator (evalUnary / evalBinary / compareValues in
// internal/formula/eval.go) and certifies the exact result. The mirror
// must agree with the evaluator bit for bit — the soundness differential
// and the fuzzdiff invariant compare certified constants against computed
// values, and the engine's consumption guard (internal/engine) refuses
// any constant that disagrees with the cached value, so a divergence here
// can cost performance but never correctness.

// foldUnary folds a unary operator over a constant operand; ok is false
// when the fold declines (unknown operator, NaN result).
func foldUnary(op string, v cell.Value) (cell.Value, bool) {
	if v.IsError() {
		return v, true
	}
	f, ok := v.AsNumber()
	if !ok {
		return cell.Errorf(cell.ErrValue), true
	}
	switch op {
	case "-":
		return foldNum(-f)
	case "+":
		return foldNum(f)
	case "%":
		return foldNum(f / 100)
	default:
		return cell.Value{}, false
	}
}

// foldBinary folds a binary operator over two constant operands,
// mirroring evalBinary's error short-circuit order (left first).
func foldBinary(op formula.BinOp, l, r cell.Value) (cell.Value, bool) {
	if l.IsError() {
		return l, true
	}
	if r.IsError() {
		return r, true
	}
	switch op {
	case formula.OpConcat:
		return cell.Str(l.AsString() + r.AsString()), true
	case formula.OpEQ:
		return cell.Boolean(l.Equal(r)), true
	case formula.OpNE:
		return cell.Boolean(!l.Equal(r)), true
	case formula.OpLT:
		return cell.Boolean(l.Compare(r) < 0), true
	case formula.OpLE:
		return cell.Boolean(l.Compare(r) <= 0), true
	case formula.OpGT:
		return cell.Boolean(l.Compare(r) > 0), true
	case formula.OpGE:
		return cell.Boolean(l.Compare(r) >= 0), true
	default:
	}
	lf, lok := l.AsNumber()
	rf, rok := r.AsNumber()
	if !lok || !rok {
		return cell.Errorf(cell.ErrValue), true
	}
	switch op {
	case formula.OpAdd:
		return foldNum(lf + rf)
	case formula.OpSub:
		return foldNum(lf - rf)
	case formula.OpMul:
		return foldNum(lf * rf)
	case formula.OpDiv:
		if rf == 0 {
			return cell.Errorf(cell.ErrDiv0), true
		}
		return foldNum(lf / rf)
	case formula.OpPow:
		return foldNum(math.Pow(lf, rf))
	default:
		return cell.Value{}, false
	}
}

// foldNum wraps a numeric fold result, declining on NaN: NaN breaks the
// exact-equality semantics a constant certificate promises (NaN != NaN),
// so the abstract path — whose Span constructor widens NaN to Full —
// handles it instead.
func foldNum(f float64) (cell.Value, bool) {
	if math.IsNaN(f) {
		return cell.Value{}, false
	}
	return cell.Num(f), true
}
