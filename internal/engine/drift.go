package engine

import (
	"repro/internal/costmodel"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sheet"
)

// This file is the plan-drift monitor's engine side: at each planner gate
// the engine consults, it captures the plan's predicted cost for the gated
// work, measures the meter delta the work actually charged, and records
// both into obs.DefaultDrift (scalarized to simulated nanoseconds under the
// profile's own coefficients, so both sides are in the same currency). A
// gate whose aggregate measured/predicted ratio leaves [0.5, 2.0] is
// miscalibrated — detected at run time, not at the next offline
// calibration pass.
//
// Predictions are build-state aware: the plan amortizes one-time structure
// builds over a site's uses, but any single observation either pays the
// build (structure cold/stale at consult time) or doesn't. The engine
// checks the backing structure's freshness at the consult and adds the
// plan's build meter to the prediction only when the work will actually
// pay it.

// Gate labels, one per planner gate.
const (
	gateLookupBinary = "lookup-binary"
	gateLookupHash   = "lookup-hash"
	gateCountIf      = "countif-index"
	gatePrefixAgg    = "prefix-agg"
	gateRecalcSeq    = "recalc-seq"
	gateDeltaMaint   = "delta-maint"
)

// driftPending is one armed lookup observation: the consult happens inside
// formula evaluation (certSortedAsc / IndexWorthwhile fire mid-Eval), so
// the site that called Eval closes the window when Eval returns. A later
// consult in the same evaluation overwrites the earlier one — the last
// gate consulted is the one whose strategy served the lookup.
type driftPending struct {
	active bool
	gate   string
	pred   costmodel.Meter
	snap   costmodel.Meter
	meter  *costmodel.Meter
}

// driftOn reports whether gate observations should be recorded: the obs
// layer is live and the profile actually plans (unplanned profiles have no
// predictions to compare).
func (e *Engine) driftOn() bool {
	return obs.Enabled() && e.prof.Opt.CostPlanner
}

// driftArm clears any pending observation before an instrumented Eval.
// Consults from uninstrumented evaluation sites (the external-refresh
// fixpoint, volatile re-seeding) leave a stale pending behind; arming
// drops it so it can never close against the wrong window.
func (e *Engine) driftArm() { e.driftPend = driftPending{} }

// driftClose records the pending lookup observation, measuring from the
// consult to now — the candidate work the plan priced (probe or scan),
// excluding the FormulaEval charge, which Eval charges on entry before any
// gate is consulted.
func (e *Engine) driftClose() {
	p := e.driftPend
	e.driftPend = driftPending{}
	if !p.active || p.meter == nil {
		return
	}
	e.driftRecord(p.gate, p.pred, p.meter.Sub(p.snap))
}

// driftRecord scalarizes one predicted/measured pair and records it.
func (e *Engine) driftRecord(gate string, pred, meas costmodel.Meter) {
	predNS := int64(e.prof.Coeff.Time(&pred))
	measNS := int64(e.prof.Coeff.Time(&meas))
	obs.DefaultDrift.Observe(e.prof.Name, gate, predNS, measNS)
	if predNS > 0 {
		e.met.planDrift.Observe(float64(measNS) / float64(predNS))
	}
}

// driftNoteLookup arms a pending observation at a lookup gate consult.
// fallbackGate labels the observation when the plan chose the scan — the
// consulting gate vetoed, so the measured work is the linear scan the plan
// priced for this site.
func (e *Engine) driftNoteLookup(s *sheet.Sheet, st *optState, meter *costmodel.Meter, col, r0, r1 int, fallbackGate string) {
	if st == nil || meter == nil || !e.driftOn() {
		return
	}
	sp := e.plannedSheet(s)
	if sp == nil {
		return
	}
	serve, build, strat, ok := sp.LookupServeWork(col, r0, r1, true)
	if !ok {
		return
	}
	pred := serve
	gate := fallbackGate
	switch strat {
	case plan.BinarySearch:
		gate = gateLookupBinary
		if !st.sortedFresh(col, r0, r1) {
			addWork(&pred, build)
		}
	case plan.HashProbe:
		gate = gateLookupHash
		if _, built := st.hash[col]; !built {
			addWork(&pred, build)
		}
	}
	e.driftPend = driftPending{active: true, gate: gate, pred: pred, snap: meter.Snapshot(), meter: meter}
}

// driftAggBegin starts a prefix-aggregate observation: prediction plus a
// meter snapshot, taken before prefixFor so a lazy fill lands inside the
// measured window exactly when the prediction includes the build.
func (e *Engine) driftAggBegin(s *sheet.Sheet, st *optState, col int) (bool, costmodel.Meter, costmodel.Meter) {
	if !e.driftOn() {
		return false, costmodel.Meter{}, costmodel.Meter{}
	}
	sp := e.plannedSheet(s)
	if sp == nil {
		return false, costmodel.Meter{}, costmodel.Meter{}
	}
	serve, build, ok := sp.AggServeWork(col)
	if !ok {
		return false, costmodel.Meter{}, costmodel.Meter{}
	}
	pred := serve
	if p, built := st.prefix[col]; !built || p.Dirty() {
		addWork(&pred, build)
	}
	return true, pred, e.meter.Snapshot()
}

// driftCountIfBegin starts a COUNTIF observation. equality selects which
// backing structure's freshness decides the build charge (hash for
// equality criteria, B-tree for relational ones).
func (e *Engine) driftCountIfBegin(s *sheet.Sheet, st *optState, col int, equality bool) (bool, costmodel.Meter, costmodel.Meter) {
	if !e.driftOn() {
		return false, costmodel.Meter{}, costmodel.Meter{}
	}
	sp := e.plannedSheet(s)
	if sp == nil {
		return false, costmodel.Meter{}, costmodel.Meter{}
	}
	serve, build, ok := sp.CountIfServeWork(col)
	if !ok {
		return false, costmodel.Meter{}, costmodel.Meter{}
	}
	pred := serve
	var built bool
	if equality {
		_, built = st.hash[col]
	} else {
		_, built = st.btree[col]
	}
	if !built {
		addWork(&pred, build)
	}
	return true, pred, e.meter.Snapshot()
}

// driftMaintBegin starts a delta-maintenance observation for one edit: the
// per-column prediction from the plan's maintenance loads, measured across
// noteCellChange (index maintenance plus the materialized-aggregate
// deltas).
func (e *Engine) driftMaintBegin(s *sheet.Sheet, col int) (bool, costmodel.Meter, costmodel.Meter) {
	if !e.driftOn() || !e.prof.Opt.IncrementalAggregates {
		return false, costmodel.Meter{}, costmodel.Meter{}
	}
	sp := e.plannedSheet(s)
	if sp == nil {
		return false, costmodel.Meter{}, costmodel.Meter{}
	}
	pred, ok := sp.MaintWork(col)
	if !ok {
		return false, costmodel.Meter{}, costmodel.Meter{}
	}
	return true, pred, e.meter.Snapshot()
}

// sortedFresh reports whether the column's cached sortedness certificate
// would answer [r0, r1] without a rescan — the mirror of sortedAsc's cache
// acceptance, read-only.
func (st *optState) sortedFresh(col, r0, r1 int) bool {
	sc, ok := st.sorted[col]
	if !ok || sc.ver != st.colVer[col] || sc.epoch != st.sortedEpoch {
		return false
	}
	if sc.ok && r0 >= sc.r0 && r1 <= sc.r1 {
		return true
	}
	return sc.r0 == r0 && sc.r1 == r1
}

// addWork accumulates src into dst metric by metric.
func addWork(dst *costmodel.Meter, src costmodel.Meter) {
	for i := costmodel.Metric(0); int(i) < costmodel.NumMetrics; i++ {
		if c := src.Count(i); c > 0 {
			dst.Add(i, c)
		}
	}
}
