package typecheck

import (
	"sort"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/graph"
	"repro/internal/sheet"
)

// site is one formula cell prepared for inference: its address, compiled
// code, and displacement from the authored origin (mirrors the analyzer's
// formulaSite and the evaluator's Env.DR/DC).
type site struct {
	at     cell.Addr
	code   *formula.Compiled
	dr, dc int
}

// Inference holds the per-sheet inference result: one abstraction per
// formula cell. Value cells are abstracted on demand from their stored
// value (Exactly), so At covers every cell of the sheet.
type Inference struct {
	s      *sheet.Sheet
	sites  []site
	byCell map[cell.Addr]Abstract
	cyclic []cell.Addr
	g      *graph.Graph
}

// maxPasses bounds the fixpoint loop. The lattice is finite and the
// transfer functions are monotone, so the loop converges; with a correct
// topological order it converges on the second pass (the first computes,
// the second observes no change). The bound is a belt against order bugs,
// not a semantic limit.
const maxPasses = 10

// InferSheet runs the abstract interpreter over one sheet: formulas are
// collected in row-major order, a private dependency graph supplies the
// topological order (exactly the engine's calc-chain construction), cells
// on or downstream of a reference cycle are pinned to #CYCLE! — matching
// evalAll — and the remaining formulas are interpreted to a fixpoint.
func InferSheet(s *sheet.Sheet) *Inference {
	inf := &Inference{
		s:      s,
		byCell: make(map[cell.Addr]Abstract, s.FormulaCount()),
		g:      graph.New(),
	}
	inf.sites = make([]site, 0, s.FormulaCount())
	s.EachFormula(func(a cell.Addr, fc sheet.Formula) bool {
		dr, dc := fc.DeltaAt(a)
		inf.sites = append(inf.sites, site{at: a, code: fc.Code, dr: dr, dc: dc})
		return true
	})
	sort.Slice(inf.sites, func(i, j int) bool {
		if inf.sites[i].at.Row != inf.sites[j].at.Row {
			return inf.sites[i].at.Row < inf.sites[j].at.Row
		}
		return inf.sites[i].at.Col < inf.sites[j].at.Col
	})

	siteOf := make(map[cell.Addr]*site, len(inf.sites))
	for i := range inf.sites {
		st := &inf.sites[i]
		inf.g.SetFormula(st.at, st.code.PrecedentRanges(st.dr, st.dc))
		siteOf[st.at] = st
	}

	order, cyclic := inf.g.AllFormulas()
	inf.cyclic = cyclic
	// The engine marks every cell the topological sort cannot schedule —
	// cycle members and their transitive dependents alike — with #CYCLE!.
	// The abstraction is exact there.
	for _, a := range cyclic {
		inf.byCell[a] = Abstract{Errs: ECycle}
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, a := range order {
			st := siteOf[a]
			if st == nil {
				continue
			}
			next := inf.byCell[a].Union(inf.evalNode(st.code.Root, st.dr, st.dc).scalar(inf))
			if next != inf.byCell[a] {
				inf.byCell[a] = next
				changed = true
			}
		}
		if !changed {
			return inf
		}
	}
	// Not converged within the bound (indicates an ordering bug): widen
	// every non-pinned formula cell to top so the result stays sound.
	for _, a := range order {
		inf.byCell[a] = Top
	}
	return inf
}

// At returns the abstraction of any cell: inferred for formula cells,
// exact for value cells (out-of-grid addresses read as empty, like the
// grid itself).
func (inf *Inference) At(a cell.Addr) Abstract {
	if ab, ok := inf.byCell[a]; ok {
		return ab
	}
	return Exactly(inf.s.Value(a))
}

// RangeJoin joins the abstractions of every cell in a range, with early
// exit once the join saturates at top.
func (inf *Inference) RangeJoin(r cell.Range) Abstract {
	var out Abstract
	for row := r.Start.Row; row <= r.End.Row; row++ {
		for col := r.Start.Col; col <= r.End.Col; col++ {
			out = out.Union(inf.At(cell.Addr{Row: row, Col: col}))
			if out == Top {
				return out
			}
		}
	}
	return out
}

// Formulas returns the number of formula cells inferred.
func (inf *Inference) Formulas() int { return len(inf.sites) }

// FormulaCells returns the addresses of every formula cell, in row-major
// order.
func (inf *Inference) FormulaCells() []cell.Addr {
	out := make([]cell.Addr, len(inf.sites))
	for i, st := range inf.sites {
		out[i] = st.at
	}
	return out
}

// Cyclic returns the cells pinned to #CYCLE! (sorted).
func (inf *Inference) Cyclic() []cell.Addr { return inf.cyclic }

// NumericColumns returns the columns holding a numeric certificate: every
// data-row cell (row 0 is the header and excluded) is statically exactly
// a number — no text, no bool, no empties, no possible error. The
// optimized engine's install pre-flight consumes these to select typed
// columnar storage (internal/engine/optimized.go).
func (inf *Inference) NumericColumns() []int {
	rows, cols := inf.s.Rows(), inf.s.Cols()
	if rows <= 1 {
		return nil
	}
	var out []int
	numeric := Abstract{Kinds: KNumber}
	for c := 0; c < cols; c++ {
		ok := true
		for r := 1; r < rows; r++ {
			if inf.At(cell.Addr{Row: r, Col: c}) != numeric {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// NumericValueColumns returns the certified numeric columns that host no
// formula cells. Their certificates depend only on the column's own stored
// values — no formula re-evaluation can silently invalidate them — so a
// consumer only has to watch direct writes into the column. The optimized
// engine consumes exactly this set when selecting typed columnar storage
// (internal/engine/optimized.go).
func (inf *Inference) NumericValueColumns() []int {
	hasFormula := make(map[int]bool)
	for _, st := range inf.sites {
		hasFormula[st.at.Col] = true
	}
	var out []int
	for _, c := range inf.NumericColumns() {
		if !hasFormula[c] {
			out = append(out, c)
		}
	}
	return out
}

// NumericDataColumns is the engine-facing convenience: infer the sheet and
// return the certified numeric value columns.
func NumericDataColumns(s *sheet.Sheet) []int {
	return InferSheet(s).NumericValueColumns()
}

// absOp is the abstract counterpart of the evaluator's operand: either a
// scalar abstraction or an unresolved range.
type absOp struct {
	ab      Abstract
	rng     cell.Range
	isRange bool
}

func scalarOp(a Abstract) absOp { return absOp{ab: a} }

// scalar collapses the operand to a scalar abstraction the way
// operand.scalar does: a multi-cell range in scalar position is exactly
// #VALUE!; a one-cell range reads through.
func (o absOp) scalar(inf *Inference) Abstract {
	if !o.isRange {
		return o.ab
	}
	if o.rng.Cells() == 1 {
		return inf.At(o.rng.Start)
	}
	return Abstract{Errs: EValue}
}

// cells joins the abstractions of every cell the operand covers (the
// abstract counterpart of operand.eachCell).
func (o absOp) cells(inf *Inference) Abstract {
	if !o.isRange {
		return o.ab
	}
	return inf.RangeJoin(o.rng)
}

// shiftRef translates a reference by the site displacement the way the
// evaluator does (absolute components stay put).
func shiftRef(r cell.Ref, dr, dc int) cell.Addr {
	a := r.Addr
	if !r.AbsRow {
		a.Row += dr
	}
	if !r.AbsCol {
		a.Col += dc
	}
	return a
}

// evalNode is the abstract transfer of one AST node.
func (inf *Inference) evalNode(n formula.Node, dr, dc int) absOp {
	switch t := n.(type) {
	case formula.NumberLit:
		return scalarOp(Abstract{Kinds: KNumber})
	case formula.StringLit:
		return scalarOp(Abstract{Kinds: KText})
	case formula.BoolLit:
		return scalarOp(Abstract{Kinds: KBool})
	case formula.ErrorLit:
		return scalarOp(Abstract{Errs: errBit(string(t))})
	case formula.RefNode:
		return scalarOp(inf.At(shiftRef(t.Ref, dr, dc)))
	case formula.RangeNode:
		return absOp{
			rng:     cell.RangeOf(shiftRef(t.From, dr, dc), shiftRef(t.To, dr, dc)),
			isRange: true,
		}
	case formula.UnaryNode:
		x := inf.evalNode(t.X, dr, dc).scalar(inf)
		return scalarOp(Abstract{Kinds: KNumber, Errs: x.Errs | numCoerceErrs(x)})
	case formula.BinaryNode:
		return scalarOp(inf.evalBinary(t, dr, dc))
	case formula.CallNode:
		return scalarOp(inf.evalCall(t, dr, dc))
	default:
		return scalarOp(Top)
	}
}

// numCoerceErrs returns the error possibility of coercing the abstraction
// to a number (cell.Value.AsNumber): only text can fail to parse; numbers,
// bools, and empty always coerce. Errors pass through separately.
func numCoerceErrs(a Abstract) Errs {
	if a.Kinds&KText != 0 {
		return EValue
	}
	return 0
}

// boolCoerceErrs is the same for boolean coercion (cell.Value.AsBool):
// only non-TRUE/FALSE text fails.
func boolCoerceErrs(a Abstract) Errs {
	if a.Kinds&KText != 0 {
		return EValue
	}
	return 0
}

// nonzeroNumberLit reports whether the node is a literal number other than
// zero — the only divisor shape for which #DIV/0! is statically excluded.
func nonzeroNumberLit(n formula.Node) bool {
	t, ok := n.(formula.NumberLit)
	return ok && float64(t) != 0
}

// evalBinary mirrors evalBinary in eval.go: operand errors pass through,
// arithmetic coerces numerically, & concatenates to text, comparisons
// yield booleans and never error.
func (inf *Inference) evalBinary(b formula.BinaryNode, dr, dc int) Abstract {
	l := inf.evalNode(b.L, dr, dc).scalar(inf)
	r := inf.evalNode(b.R, dr, dc).scalar(inf)
	errs := l.Errs | r.Errs
	switch b.Op {
	case formula.OpConcat:
		return Abstract{Kinds: KText, Errs: errs}
	case formula.OpEQ, formula.OpNE, formula.OpLT, formula.OpLE, formula.OpGT, formula.OpGE:
		return Abstract{Kinds: KBool, Errs: errs}
	case formula.OpDiv:
		errs |= numCoerceErrs(l) | numCoerceErrs(r)
		if !nonzeroNumberLit(b.R) {
			errs |= EDiv0
		}
		return Abstract{Kinds: KNumber, Errs: errs}
	default: // OpAdd, OpSub, OpMul, OpPow
		errs |= numCoerceErrs(l) | numCoerceErrs(r)
		return Abstract{Kinds: KNumber, Errs: errs}
	}
}

// evalCall mirrors evalCall in eval.go: unknown functions are exactly
// #NAME?, arity violations exactly #VALUE!, and each built-in has a
// transfer in the table below (conservative top for unmodeled ones).
func (inf *Inference) evalCall(c formula.CallNode, dr, dc int) Abstract {
	min, max, known := formula.FunctionArity(c.Name)
	if !known {
		return Abstract{Errs: EName}
	}
	if len(c.Args) < min || (max >= 0 && len(c.Args) > max) {
		return Abstract{Errs: EValue}
	}
	ctx := &callCtx{inf: inf, call: c, dr: dr, dc: dc}
	if tf, ok := transfers[c.Name]; ok {
		return tf(ctx)
	}
	return Top
}

// callCtx carries one call's operands through a transfer function, with
// lazy per-argument resolution.
type callCtx struct {
	inf    *Inference
	call   formula.CallNode
	dr, dc int
}

// arg returns the i-th argument operand.
func (c *callCtx) arg(i int) absOp {
	return c.inf.evalNode(c.call.Args[i], c.dr, c.dc)
}

// scalar resolves the i-th argument as a scalar.
func (c *callCtx) scalar(i int) Abstract { return c.arg(i).scalar(c.inf) }

// cellErrs joins the error sets of every cell of every argument — the
// abstract counterpart of aggregate streaming (forEachNumber and friends
// propagate the first cell error they see).
func (c *callCtx) cellErrs() Errs {
	var e Errs
	for i := range c.call.Args {
		e |= c.arg(i).cells(c.inf).Errs
	}
	return e
}

// scalarErrs joins the error-and-coercion possibilities of every argument
// taken as a numeric scalar (the withNum-style helpers).
func (c *callCtx) scalarErrs() Errs {
	var e Errs
	for i := range c.call.Args {
		a := c.scalar(i)
		e |= a.Errs | numCoerceErrs(a)
	}
	return e
}

// rangeArgErr returns EValue when the i-th argument is present and not
// syntactically a range (SUMIF/AVERAGEIF reject non-range test and sum
// arguments with #VALUE!).
func (c *callCtx) rangeArgErr(i int) Errs {
	if i >= len(c.call.Args) {
		return 0
	}
	if _, ok := c.call.Args[i].(formula.RangeNode); !ok {
		return EValue
	}
	return 0
}

func number(e Errs) Abstract  { return Abstract{Kinds: KNumber, Errs: e} }
func boolean(e Errs) Abstract { return Abstract{Kinds: KBool, Errs: e} }
func text(e Errs) Abstract    { return Abstract{Kinds: KText, Errs: e} }

// transfers maps built-ins to their abstract transfer. Functions absent
// from the table (lookups, SWITCH/CHOOSE, and anything added later)
// default to Top in evalCall, which is sound for every total function.
// Filled in init to break the declaration cycle through evalNode.
var transfers map[string]func(*callCtx) Abstract

func init() { transfers = builtinTransfers() }

func builtinTransfers() map[string]func(*callCtx) Abstract {
	return map[string]func(*callCtx) Abstract{
		// Aggregates: forEachNumber propagates cell errors; AVERAGE adds
		// #DIV/0! when no numeric cell is seen. COUNTA/COUNTBLANK never error.
		"SUM":        func(c *callCtx) Abstract { return number(c.cellErrs()) },
		"COUNT":      func(c *callCtx) Abstract { return number(c.cellErrs()) },
		"MIN":        func(c *callCtx) Abstract { return number(c.cellErrs()) },
		"MAX":        func(c *callCtx) Abstract { return number(c.cellErrs()) },
		"PRODUCT":    func(c *callCtx) Abstract { return number(c.cellErrs()) },
		"AVERAGE":    func(c *callCtx) Abstract { return number(c.cellErrs() | EDiv0) },
		"COUNTA":     func(c *callCtx) Abstract { return number(0) },
		"COUNTBLANK": func(c *callCtx) Abstract { return number(0) },
		// The criterion family ignores cell errors (Criterion.Match maps them
		// to a boolean); SUMIF/AVERAGEIF still reject non-range arguments.
		"COUNTIF": func(c *callCtx) Abstract { return number(0) },
		"SUMIF": func(c *callCtx) Abstract {
			return number(c.rangeArgErr(0) | c.rangeArgErr(2))
		},
		"AVERAGEIF": func(c *callCtx) Abstract {
			return number(c.rangeArgErr(0) | c.rangeArgErr(2) | EDiv0)
		},

		// Logic. IF propagates condition errors and coercion failures, then
		// joins the branches (the untaken branch's errors never surface in the
		// evaluator, but joining both is the sound static account of not
		// knowing which is taken); the 2-arg form can yield FALSE.
		"IF": func(c *callCtx) Abstract {
			cond := c.scalar(0)
			out := Abstract{Errs: cond.Errs | boolCoerceErrs(cond)}
			out = out.Union(c.scalar(1))
			if len(c.call.Args) == 3 {
				out = out.Union(c.scalar(2))
			} else {
				out.Kinds |= KBool
			}
			return out
		},
		// IFERROR absorbs the first argument's errors entirely: the result
		// errors only through the fallback, and only when the first argument
		// can error at all.
		"IFERROR": func(c *callCtx) Abstract {
			v := c.scalar(0)
			out := Abstract{Kinds: v.Kinds}
			if v.Errs != 0 {
				out = out.Union(c.scalar(1))
			}
			return out
		},
		"AND": func(c *callCtx) Abstract { return boolean(c.cellErrs() | EValue) },
		"OR":  func(c *callCtx) Abstract { return boolean(c.cellErrs() | EValue) },
		"XOR": func(c *callCtx) Abstract { return boolean(c.cellErrs() | EValue) },
		"NOT": func(c *callCtx) Abstract {
			v := c.scalar(0)
			return boolean(v.Errs | boolCoerceErrs(v))
		},
		// The IS* tests absorb errors by construction: they return a boolean
		// for any input, including error values.
		"ISBLANK":   func(c *callCtx) Abstract { return boolean(0) },
		"ISNUMBER":  func(c *callCtx) Abstract { return boolean(0) },
		"ISTEXT":    func(c *callCtx) Abstract { return boolean(0) },
		"ISERROR":   func(c *callCtx) Abstract { return boolean(0) },
		"ISLOGICAL": func(c *callCtx) Abstract { return boolean(0) },

		// Volatile constants: always a number. The fixpoint loop re-applies
		// these transfers like any other; their result is stable by
		// construction even though each evaluation differs.
		"NOW":   func(c *callCtx) Abstract { return number(0) },
		"TODAY": func(c *callCtx) Abstract { return number(0) },
		"RAND":  func(c *callCtx) Abstract { return number(0) },
		"PI":    func(c *callCtx) Abstract { return number(0) },
		"RANDBETWEEN": func(c *callCtx) Abstract {
			return number(c.scalarErrs() | EValue) // hi < lo is #VALUE!
		},

		// Math: withNum coerces, domain violations are #VALUE!, MOD divides.
		"ABS":  func(c *callCtx) Abstract { return number(c.scalarErrs()) },
		"EXP":  func(c *callCtx) Abstract { return number(c.scalarErrs()) },
		"INT":  func(c *callCtx) Abstract { return number(c.scalarErrs()) },
		"SIGN": func(c *callCtx) Abstract { return number(c.scalarErrs()) },
		"SQRT": func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"LN":   func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"LOG10": func(c *callCtx) Abstract {
			return number(c.scalarErrs() | EValue)
		},
		"LOG":       func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"ROUND":     func(c *callCtx) Abstract { return number(c.scalarErrs()) },
		"ROUNDUP":   func(c *callCtx) Abstract { return number(c.scalarErrs()) },
		"ROUNDDOWN": func(c *callCtx) Abstract { return number(c.scalarErrs()) },
		"POWER":     func(c *callCtx) Abstract { return number(c.scalarErrs()) },
		"MOD": func(c *callCtx) Abstract {
			e := c.scalarErrs()
			if !nonzeroNumberLit(c.call.Args[1]) {
				e |= EDiv0
			}
			return number(e)
		},

		// Date/time: numeric serials; invalid parts are #VALUE!.
		"DATE":    func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"YEAR":    func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"MONTH":   func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"DAY":     func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"HOUR":    func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"MINUTE":  func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"SECOND":  func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"WEEKDAY": func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"DAYS":    func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"EDATE":   func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },
		"EOMONTH": func(c *callCtx) Abstract { return number(c.scalarErrs() | EValue) },

		// Multi-criteria aggregates: shape mismatches are #VALUE!; AVERAGEIFS
		// divides by the match count.
		"COUNTIFS":   func(c *callCtx) Abstract { return number(c.cellErrs() | EValue) },
		"SUMIFS":     func(c *callCtx) Abstract { return number(c.cellErrs() | EValue) },
		"MAXIFS":     func(c *callCtx) Abstract { return number(c.cellErrs() | EValue) },
		"MINIFS":     func(c *callCtx) Abstract { return number(c.cellErrs() | EValue) },
		"SUMPRODUCT": func(c *callCtx) Abstract { return number(c.cellErrs() | EValue) },
		"AVERAGEIFS": func(c *callCtx) Abstract {
			return number(c.cellErrs() | EValue | EDiv0)
		},

		// Statistics: collectNumbers propagates cell errors; empty inputs and
		// out-of-range k are #VALUE!/#DIV/0!/#N/A depending on the function.
		"MEDIAN":     func(c *callCtx) Abstract { return number(c.cellErrs() | EValue) },
		"STDEV":      func(c *callCtx) Abstract { return number(c.cellErrs() | EDiv0 | EValue) },
		"VAR":        func(c *callCtx) Abstract { return number(c.cellErrs() | EDiv0 | EValue) },
		"LARGE":      func(c *callCtx) Abstract { return number(c.cellErrs() | EValue) },
		"SMALL":      func(c *callCtx) Abstract { return number(c.cellErrs() | EValue) },
		"RANK":       func(c *callCtx) Abstract { return number(c.cellErrs() | EValue | ENA) },
		"PERCENTILE": func(c *callCtx) Abstract { return number(c.cellErrs() | EValue) },

		// Text: string results; size/position violations are #VALUE!.
		"CONCATENATE": func(c *callCtx) Abstract { return text(c.textArgErrs()) },
		"CONCAT":      func(c *callCtx) Abstract { return text(c.textArgErrs()) },
		"LOWER":       func(c *callCtx) Abstract { return text(c.textArgErrs()) },
		"UPPER":       func(c *callCtx) Abstract { return text(c.textArgErrs()) },
		"TRIM":        func(c *callCtx) Abstract { return text(c.textArgErrs()) },
		"LEFT":        func(c *callCtx) Abstract { return text(c.textArgErrs() | EValue) },
		"RIGHT":       func(c *callCtx) Abstract { return text(c.textArgErrs() | EValue) },
		"MID":         func(c *callCtx) Abstract { return text(c.textArgErrs() | EValue) },
		"SUBSTITUTE":  func(c *callCtx) Abstract { return text(c.textArgErrs() | EValue) },
		"REPT":        func(c *callCtx) Abstract { return text(c.textArgErrs() | EValue) },
		"TEXTJOIN":    func(c *callCtx) Abstract { return text(c.textArgErrs() | EValue) },
		"LEN":         func(c *callCtx) Abstract { return number(c.textArgErrs() | EValue) },
		"FIND":        func(c *callCtx) Abstract { return number(c.textArgErrs() | EValue) },
		"VALUE":       func(c *callCtx) Abstract { return number(c.textArgErrs() | EValue) },
		"EXACT":       func(c *callCtx) Abstract { return boolean(c.textArgErrs() | EValue) },
	}
}

// textArgErrs joins each argument's cell errors, plus #VALUE! for
// multi-cell range arguments (the string built-ins take scalars, and a
// multi-cell range in scalar position is #VALUE!; the few that stream
// cells instead are over-approximated by the same join, which is sound).
func (c *callCtx) textArgErrs() Errs {
	var e Errs
	for i := range c.call.Args {
		a := c.arg(i)
		e |= a.cells(c.inf).Errs
		if a.isRange && a.rng.Cells() > 1 {
			e |= EValue
		}
	}
	return e
}
