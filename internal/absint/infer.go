package absint

import (
	"sort"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/graph"
	"repro/internal/sheet"
	"repro/internal/typecheck"
)

// site is one formula cell prepared for inference: its address, compiled
// code, and displacement from the authored origin (mirrors
// typecheck.InferSheet and the evaluator's Env.DR/DC).
type site struct {
	at     cell.Addr
	code   *formula.Compiled
	dr, dc int
}

// Inference holds the per-sheet inference result: one abstract value per
// formula cell. Value cells are abstracted on demand from their stored
// value (Exactly), so At covers every cell of the sheet.
type Inference struct {
	s      *sheet.Sheet
	sites  []site
	byCell map[cell.Addr]Value
	cyclic []cell.Addr
	g      *graph.Graph
}

// maxPasses bounds the fixpoint loop and widenAfter starts the widening:
// unlike typecheck's finite lattice, intervals form infinite ascending
// chains, so after widenAfter passes any bound still moving is widened to
// its infinity (Interval.WidenTo), which stabilizes in one more pass per
// chain. With a correct topological order the loop converges on the
// second pass and widening never fires; the budget is a belt against
// order bugs, with the all-top fallback as the last resort.
const (
	maxPasses  = 12
	widenAfter = 3
)

// InferSheet runs the abstract interpreter over one sheet: formulas are
// collected in row-major order, a private dependency graph supplies the
// topological order (exactly the engine's calc-chain construction), cells
// on or downstream of a reference cycle are pinned to #CYCLE! — matching
// evalAll — and the remaining formulas are interpreted to a fixpoint with
// interval widening.
func InferSheet(s *sheet.Sheet) *Inference {
	inf := &Inference{
		s:      s,
		byCell: make(map[cell.Addr]Value, s.FormulaCount()),
		g:      graph.New(),
	}
	inf.sites = make([]site, 0, s.FormulaCount())
	s.EachFormula(func(a cell.Addr, fc sheet.Formula) bool {
		dr, dc := fc.DeltaAt(a)
		inf.sites = append(inf.sites, site{at: a, code: fc.Code, dr: dr, dc: dc})
		return true
	})
	sort.Slice(inf.sites, func(i, j int) bool {
		if inf.sites[i].at.Row != inf.sites[j].at.Row {
			return inf.sites[i].at.Row < inf.sites[j].at.Row
		}
		return inf.sites[i].at.Col < inf.sites[j].at.Col
	})

	siteOf := make(map[cell.Addr]*site, len(inf.sites))
	for i := range inf.sites {
		st := &inf.sites[i]
		inf.g.SetFormula(st.at, st.code.PrecedentRanges(st.dr, st.dc))
		siteOf[st.at] = st
	}

	order, cyclic := inf.g.AllFormulas()
	inf.cyclic = cyclic
	// The engine marks every cell the topological sort cannot schedule —
	// cycle members and their transitive dependents alike — with #CYCLE!.
	// The abstraction is exact there.
	for _, a := range cyclic {
		inf.byCell[a] = Value{Ab: typecheck.Abstract{Errs: typecheck.ECycle}, Num: EmptyInterval()}
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, a := range order {
			st := siteOf[a]
			if st == nil {
				continue
			}
			cur := inf.byCell[a]
			next := cur.Join(inf.evalNode(st.code.Root, st.dr, st.dc).scalar(inf))
			if pass >= widenAfter {
				next = cur.WidenTo(next)
			}
			if !next.eq(cur) {
				inf.byCell[a] = next
				changed = true
			}
		}
		if !changed {
			return inf
		}
	}
	// Not converged within the bound (indicates an ordering bug): widen
	// every non-pinned formula cell to top so the result stays sound.
	for _, a := range order {
		inf.byCell[a] = TopValue()
	}
	return inf
}

// At returns the abstract value of any cell: inferred for formula cells,
// exact for value cells (out-of-grid addresses read as empty, like the
// grid itself).
func (inf *Inference) At(a cell.Addr) Value {
	if v, ok := inf.byCell[a]; ok {
		return v
	}
	return Exactly(inf.s.Value(a))
}

// RangeJoin joins the abstract values of every cell in a range, with
// early exit once the join saturates at top. Constants never survive a
// multi-cell join, so the loop works on the kind and interval components
// directly and avoids At's per-value-cell allocation.
func (inf *Inference) RangeJoin(r cell.Range) Value {
	var ab typecheck.Abstract
	num := EmptyInterval()
	for row := r.Start.Row; row <= r.End.Row; row++ {
		for col := r.Start.Col; col <= r.End.Col; col++ {
			a := cell.Addr{Row: row, Col: col}
			if v, ok := inf.byCell[a]; ok {
				v = v.norm()
				ab = ab.Union(v.Ab)
				num = num.Union(v.Num)
			} else {
				w := inf.s.Value(a)
				ab = ab.Union(typecheck.Exactly(w))
				if w.Kind == cell.Number {
					num = num.Union(Point(w.Num))
				}
			}
			if ab == typecheck.Top && num.IsFull() {
				return TopValue()
			}
		}
	}
	return Value{Ab: ab, Num: num}
}

// JoinSpan joins one column's cells over the inclusive row span — the
// region-level certificate view the regions report consumes.
func (inf *Inference) JoinSpan(col, r0, r1 int) Value {
	return inf.RangeJoin(cell.RangeOf(cell.Addr{Row: r0, Col: col}, cell.Addr{Row: r1, Col: col}))
}

// Formulas returns the number of formula cells inferred.
func (inf *Inference) Formulas() int { return len(inf.sites) }

// FormulaCells returns the addresses of every formula cell, in row-major
// order.
func (inf *Inference) FormulaCells() []cell.Addr {
	out := make([]cell.Addr, len(inf.sites))
	for i, st := range inf.sites {
		out[i] = st.at
	}
	return out
}

// Cyclic returns the cells pinned to #CYCLE! (sorted).
func (inf *Inference) Cyclic() []cell.Addr { return inf.cyclic }

// absOp is the abstract counterpart of the evaluator's operand: either a
// scalar abstract value or an unresolved range. An ext range lives on a
// foreign sheet: its extent (and therefore cell count) is statically
// known, but its values are outside this sheet's inference, so every
// per-cell read is top.
type absOp struct {
	v       Value
	rng     cell.Range
	isRange bool
	ext     bool
}

func scalarOp(v Value) absOp { return absOp{v: v} }

// scalar collapses the operand to a scalar the way operand.scalar does: a
// multi-cell range in scalar position is exactly #VALUE!; a one-cell
// range reads through; a foreign range reads foreign cells, so top.
func (o absOp) scalar(inf *Inference) Value {
	if !o.isRange {
		return o.v
	}
	if o.ext {
		return TopValue()
	}
	if o.rng.Cells() == 1 {
		return inf.At(o.rng.Start)
	}
	return errValue(typecheck.EValue)
}

// cells joins the abstract values of every cell the operand covers (the
// abstract counterpart of operand.eachCell).
func (o absOp) cells(inf *Inference) Value {
	if !o.isRange {
		return o.v
	}
	if o.ext {
		return TopValue()
	}
	return inf.RangeJoin(o.rng)
}

// count is the number of cells the operand covers (1 for scalars).
func (o absOp) count() int {
	if !o.isRange {
		return 1
	}
	return o.rng.Cells()
}

// errValue is the abstraction holding exactly the given error set.
func errValue(e typecheck.Errs) Value {
	return Value{Ab: typecheck.Abstract{Errs: e}, Num: EmptyInterval()}
}

// errBitOf maps an error code string to its typecheck lattice bit through
// Exactly, which already maps unknown codes to the full error set.
func errBitOf(code string) typecheck.Errs {
	return typecheck.Exactly(cell.Errorf(code)).Errs
}

// shiftRef translates a reference by the site displacement the way the
// evaluator does (absolute components stay put).
func shiftRef(r cell.Ref, dr, dc int) cell.Addr {
	a := r.Addr
	if !r.AbsRow {
		a.Row += dr
	}
	if !r.AbsCol {
		a.Col += dc
	}
	return a
}

// numInterval bounds the result of numerically coercing the value
// (cell.Value.AsNumber): numbers keep their interval, bools coerce to
// {0,1}, empty to 0, and text can parse to anything, so it forces Full.
func numInterval(v Value) Interval {
	v = v.norm()
	k := v.Ab.Kinds
	if k&typecheck.KText != 0 {
		return Full()
	}
	iv := v.Num
	if k&typecheck.KBool != 0 {
		iv = iv.Union(Span(0, 1))
	}
	if k&typecheck.KEmpty != 0 {
		iv = iv.Union(Point(0))
	}
	return iv
}

// numCoerceErrs mirrors typecheck: only text can fail numeric coercion.
func numCoerceErrs(a typecheck.Abstract) typecheck.Errs {
	if a.Kinds&typecheck.KText != 0 {
		return typecheck.EValue
	}
	return 0
}

// boolCoerceErrs mirrors typecheck: only non-TRUE/FALSE text fails.
func boolCoerceErrs(a typecheck.Abstract) typecheck.Errs {
	if a.Kinds&typecheck.KText != 0 {
		return typecheck.EValue
	}
	return 0
}

// evalNode is the abstract transfer of one AST node.
func (inf *Inference) evalNode(n formula.Node, dr, dc int) absOp {
	switch t := n.(type) {
	case formula.NumberLit:
		return scalarOp(Exactly(cell.Num(float64(t))))
	case formula.StringLit:
		return scalarOp(Exactly(cell.Str(string(t))))
	case formula.BoolLit:
		return scalarOp(Exactly(cell.Boolean(bool(t))))
	case formula.ErrorLit:
		return scalarOp(Exactly(cell.Errorf(string(t))))
	case formula.RefNode:
		return scalarOp(inf.At(shiftRef(t.Ref, dr, dc)))
	case formula.RangeNode:
		return absOp{
			rng:     cell.RangeOf(shiftRef(t.From, dr, dc), shiftRef(t.To, dr, dc)),
			isRange: true,
		}
	case formula.UnaryNode:
		return scalarOp(inf.evalUnary(t, dr, dc))
	case formula.BinaryNode:
		return scalarOp(inf.evalBinary(t, dr, dc))
	case formula.CallNode:
		return scalarOp(inf.evalCall(t, dr, dc))
	case formula.ExtRefNode:
		// Cross-sheet values are outside this sheet's inference: single
		// references are top scalars; ranges keep their statically known
		// extent (counts stay sound) with top cells.
		if t.IsRange {
			return absOp{
				rng:     cell.RangeOf(shiftRef(t.From, dr, dc), shiftRef(t.To, dr, dc)),
				isRange: true,
				ext:     true,
			}
		}
		return scalarOp(TopValue())
	default:
		// Anything added later: no claim is sound.
		return scalarOp(TopValue())
	}
}

// evalUnary mirrors evalUnary in eval.go: errors pass through, the
// operand coerces numerically, then -x / +x / x%. A constant operand
// folds through the concrete mirror.
func (inf *Inference) evalUnary(u formula.UnaryNode, dr, dc int) Value {
	x := inf.evalNode(u.X, dr, dc).scalar(inf)
	if x.Const != nil {
		if r, ok := foldUnary(u.Op, *x.Const); ok {
			return Exactly(r)
		}
	}
	iv := numInterval(x)
	switch u.Op {
	case "-":
		iv = iv.Neg()
	case "+":
		// identity
	case "%":
		iv = iv.Scale(1.0 / 100)
	default:
		// evalUnary returns #VALUE! for unknown operators.
		return errValue(typecheck.EValue)
	}
	return Value{
		Ab:  typecheck.Abstract{Kinds: typecheck.KNumber, Errs: x.Ab.Errs | numCoerceErrs(x.Ab)},
		Num: iv,
	}
}

// evalBinary mirrors evalBinary in eval.go: operand errors pass through,
// arithmetic coerces numerically, & concatenates to text, comparisons
// yield booleans and never error. Interval arithmetic refines the numeric
// result; two constant operands fold through the concrete mirror; a
// divisor interval excluding zero discharges #DIV/0!.
func (inf *Inference) evalBinary(b formula.BinaryNode, dr, dc int) Value {
	l := inf.evalNode(b.L, dr, dc).scalar(inf)
	r := inf.evalNode(b.R, dr, dc).scalar(inf)
	if l.Const != nil && r.Const != nil {
		if v, ok := foldBinary(b.Op, *l.Const, *r.Const); ok {
			return Exactly(v)
		}
	}
	errs := l.Ab.Errs | r.Ab.Errs
	switch b.Op {
	case formula.OpConcat:
		return Value{Ab: typecheck.Abstract{Kinds: typecheck.KText, Errs: errs}, Num: EmptyInterval()}
	case formula.OpEQ, formula.OpNE, formula.OpLT, formula.OpLE, formula.OpGT, formula.OpGE:
		return Value{Ab: typecheck.Abstract{Kinds: typecheck.KBool, Errs: errs}, Num: EmptyInterval()}
	case formula.OpAdd:
		return arith(errs, l, r, Interval.Add)
	case formula.OpSub:
		return arith(errs, l, r, Interval.Sub)
	case formula.OpMul:
		return arith(errs, l, r, Interval.Mul)
	case formula.OpDiv:
		errs |= numCoerceErrs(l.Ab) | numCoerceErrs(r.Ab)
		li, ri := numInterval(l), numInterval(r)
		if ri.Contains(0) {
			// The divisor can be zero: #DIV/0! is possible and no finite
			// quotient bound is sound.
			return Value{Ab: typecheck.Abstract{Kinds: typecheck.KNumber, Errs: errs | typecheck.EDiv0}, Num: Full()}
		}
		return Value{Ab: typecheck.Abstract{Kinds: typecheck.KNumber, Errs: errs}, Num: li.Div(ri)}
	case formula.OpPow:
		errs |= numCoerceErrs(l.Ab) | numCoerceErrs(r.Ab)
		return Value{Ab: typecheck.Abstract{Kinds: typecheck.KNumber, Errs: errs}, Num: Full()}
	default:
		// evalBinary returns #VALUE! for unknown operators.
		return errValue(typecheck.EValue)
	}
}

// arith is the shared add/sub/mul shape: coercion errors join in and the
// interval operation runs over the coercion-widened operand intervals.
func arith(errs typecheck.Errs, l, r Value, op func(Interval, Interval) Interval) Value {
	errs |= numCoerceErrs(l.Ab) | numCoerceErrs(r.Ab)
	return Value{
		Ab:  typecheck.Abstract{Kinds: typecheck.KNumber, Errs: errs},
		Num: op(numInterval(l), numInterval(r)),
	}
}

// evalCall mirrors evalCall in eval.go: unknown functions are exactly
// #NAME? (this is where the unregistered volatile OFFSET/INDIRECT land),
// arity violations exactly #VALUE!, and each built-in has a transfer in
// transfers.go. A builtin missing from the table defaults to top — the
// latticecheck lint enforces the same default discipline inside every
// transfer switch.
func (inf *Inference) evalCall(c formula.CallNode, dr, dc int) Value {
	min, max, known := formula.FunctionArity(c.Name)
	if !known {
		return errValue(typecheck.EName)
	}
	if len(c.Args) < min || (max >= 0 && len(c.Args) > max) {
		return errValue(typecheck.EValue)
	}
	ctx := &callCtx{inf: inf, call: c, dr: dr, dc: dc}
	if tf, ok := transfers[c.Name]; ok {
		return tf(ctx)
	}
	return TopValue()
}

// callCtx carries one call's operands through a transfer function, with
// lazy per-argument resolution.
type callCtx struct {
	inf    *Inference
	call   formula.CallNode
	dr, dc int
}

// arg returns the i-th argument operand.
func (c *callCtx) arg(i int) absOp {
	return c.inf.evalNode(c.call.Args[i], c.dr, c.dc)
}

// scalar resolves the i-th argument as a scalar.
func (c *callCtx) scalar(i int) Value { return c.arg(i).scalar(c.inf) }

// cellsJoin joins the abstract values of every cell of every argument —
// the abstract counterpart of aggregate streaming. Its Num component
// bounds every number any streamed cell can contribute (forEachNumber
// skips non-numbers without coercing, so the uncoerced interval is the
// right bound).
func (c *callCtx) cellsJoin() Value {
	out := Value{Num: EmptyInterval()}
	for i := range c.call.Args {
		out = out.Join(c.arg(i).cells(c.inf))
	}
	return out
}

// cellErrs joins the error sets of every cell of every argument.
func (c *callCtx) cellErrs() typecheck.Errs { return c.cellsJoin().Ab.Errs }

// cellCount is the total number of cells across every argument — the n in
// the aggregate interval folds.
func (c *callCtx) cellCount() int {
	n := 0
	for i := range c.call.Args {
		n += c.arg(i).count()
	}
	return n
}

// scalarErrs joins the error-and-coercion possibilities of every argument
// taken as a numeric scalar (the withNum-style helpers).
func (c *callCtx) scalarErrs() typecheck.Errs {
	var e typecheck.Errs
	for i := range c.call.Args {
		a := c.scalar(i)
		e |= a.Ab.Errs | numCoerceErrs(a.Ab)
	}
	return e
}

// rangeArgErr returns EValue when the i-th argument is present and not
// syntactically a range (SUMIF/AVERAGEIF reject non-range test and sum
// arguments with #VALUE!). Local and cross-sheet ranges both qualify.
func (c *callCtx) rangeArgErr(i int) typecheck.Errs {
	if i >= len(c.call.Args) {
		return 0
	}
	switch a := c.call.Args[i].(type) {
	case formula.RangeNode:
		return 0
	case formula.ExtRefNode:
		if a.IsRange {
			return 0
		}
		return typecheck.EValue
	default:
		// Any non-range argument shape, including nodes added later.
		return typecheck.EValue
	}
}

// textArgErrs joins each argument's cell errors, plus #VALUE! for
// multi-cell range arguments, mirroring typecheck.
func (c *callCtx) textArgErrs() typecheck.Errs {
	var e typecheck.Errs
	for i := range c.call.Args {
		a := c.arg(i)
		e |= a.cells(c.inf).Ab.Errs
		if a.isRange && a.rng.Cells() > 1 {
			e |= typecheck.EValue
		}
	}
	return e
}

// number / boolean / textual are the transfer result constructors.
func number(e typecheck.Errs, iv Interval) Value {
	return Value{Ab: typecheck.Abstract{Kinds: typecheck.KNumber, Errs: e}, Num: iv}
}

func boolean(e typecheck.Errs) Value {
	return Value{Ab: typecheck.Abstract{Kinds: typecheck.KBool, Errs: e}, Num: EmptyInterval()}
}

func textual(e typecheck.Errs) Value {
	return Value{Ab: typecheck.Abstract{Kinds: typecheck.KText, Errs: e}, Num: EmptyInterval()}
}
