package engine

import (
	"sync"

	"repro/internal/cell"
	"repro/internal/costmodel"
	"repro/internal/formula"
	"repro/internal/sheet"
)

// RecalculateParallel recomputes every formula using the given number of
// workers — the multi-threaded recalculation §3.3 notes Excel 2016 supports
// but ships disabled ("the default setting is to evaluate a formula on the
// main thread"), which is why the benchmark proper never uses it.
//
// Scheduling is certificate-driven: when the sheet's parallel-safety
// certificate (internal/interfere) stages cleanly and the region graph can
// sequence it, regions within one certified stage evaluate concurrently via
// the runtime-checked scheduler. Sheets that cannot be certified — volatile
// or computed references, region cycles, per-cell cycles — fall back to
// conservative per-cell dependency leveling. Both paths are version-keyed
// to the formula set, so no edit (including a region SplitAt) can ever
// replay a stale schedule.
//
// Results are identical to Recalculate; only wall time changes. The
// simulated clock is unaffected by parallelism (simulated time models the
// single-threaded systems under test), so the returned Result's Sim equals
// the serial cost while Wall reflects the speedup.
func (e *Engine) RecalculateParallel(s *sheet.Sheet, workers int) (Result, error) {
	if s == nil {
		return Result{}, errSheet("RecalculateParallel")
	}
	if workers < 1 {
		workers = 1
	}
	t := e.begin(OpSetCell)
	order, cyclic := e.fullChain(s, &e.meter)
	if ce := e.parallelCertFor(s, &e.meter); len(cyclic) == 0 && ce.cert.OK && ce.g.OK() {
		if err := e.runStages(s, ce, workers); err != nil {
			return Result{}, err
		}
		return t.finish(), nil
	}
	e.recalcLevels(s, order, cyclic, workers)
	return t.finish(), nil
}

// recalcLevels is the uncertified fallback: formulae are grouped into
// per-cell dependency levels; within a level all formulae are independent
// and evaluate concurrently, with per-worker meters merged at the end.
func (e *Engine) recalcLevels(s *sheet.Sheet, order, cyclic []cell.Addr, workers int) {
	// Assign dependency levels: a formula evaluates one level after the
	// deepest formula it reads. Small ranges resolve exactly; a formula
	// with a large-range precedent is conservatively placed after
	// everything seen so far (correct, loses some parallelism — the
	// benchmark's huge aggregates depend on whole columns anyway).
	level := make(map[cell.Addr]int, len(order))
	g := e.graph(s)
	maxLevel := 0
	seenMax := 0
	for _, at := range order {
		lv := 0
		for _, r := range g.Precedents(at) {
			if r.Cells() > 64 {
				if seenMax > lv-1 {
					lv = seenMax + 1
				}
				continue
			}
			for row := r.Start.Row; row <= r.End.Row; row++ {
				for col := r.Start.Col; col <= r.End.Col; col++ {
					if plv, ok := level[cell.Addr{Row: row, Col: col}]; ok && plv+1 > lv {
						lv = plv + 1
					}
				}
			}
		}
		level[at] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
		if lv > seenMax {
			seenMax = lv
		}
	}
	buckets := make([][]cell.Addr, maxLevel+1)
	for _, at := range order {
		lv := level[at]
		buckets[lv] = append(buckets[lv], at)
	}

	meters := make([]costmodel.Meter, workers)
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		var wg sync.WaitGroup
		chunk := (len(bucket) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(bucket) {
				break
			}
			hi := lo + chunk
			if hi > len(bucket) {
				hi = len(bucket)
			}
			wg.Add(1)
			go func(w int, part []cell.Addr) {
				defer wg.Done()
				env := &formula.Env{
					Src:    s, // raw sheet: calc-pass semantics, no read-through
					Meter:  &meters[w],
					Now:    e.nowFn,
					Lookup: e.prof.Lookup,
				}
				for _, at := range part {
					fc, ok := s.Formula(at)
					if !ok {
						continue
					}
					env.DR, env.DC = fc.DeltaAt(at)
					s.SetCachedValue(at, formula.Eval(fc.Code, env))
				}
			}(w, bucket[lo:hi])
		}
		wg.Wait()
	}
	for _, at := range cyclic {
		s.SetCachedValue(at, cell.Errorf(cell.ErrCycle))
	}
	for w := range meters {
		for m := costmodel.Metric(0); int(m) < costmodel.NumMetrics; m++ {
			if n := meters[w].Count(m); n != 0 {
				e.meter.Add(m, n)
			}
		}
	}
}
