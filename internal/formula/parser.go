package formula

import (
	"strconv"
	"strings"

	"repro/internal/cell"
)

// parser is a recursive-descent parser with precedence climbing, matching
// the operator precedence shared by the Excel, Calc, and Sheets dialects:
//
//	1 (lowest)  comparisons  = <> < <= > >=
//	2           concatenation &
//	3           additive     + -
//	4           multiplicative * /
//	5           exponentiation ^   (left-associative, as in Excel)
//	6           unary -, unary +, percent postfix
//	7 (highest) literals, references, ranges, calls, parentheses
type parser struct {
	src  string
	lex  *lexer
	tok  token // current token
	peek *token
}

// Parse parses a formula. The text may include or omit the leading '='.
func Parse(text string) (Node, error) {
	body := text
	if strings.HasPrefix(body, "=") {
		body = body[1:]
	}
	p := &parser{src: body, lex: newLexer(body)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.parseExpr(1)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errParse(p.src, p.tok.pos, "unexpected %s", p.tok.kind)
	}
	return n, nil
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

// binPrec returns the precedence of the current token as a binary operator,
// or 0 when it is not one.
func binPrec(k tokKind) (BinOp, int) {
	switch k {
	case tokEQ:
		return OpEQ, 1
	case tokNE:
		return OpNE, 1
	case tokLT:
		return OpLT, 1
	case tokLE:
		return OpLE, 1
	case tokGT:
		return OpGT, 1
	case tokGE:
		return OpGE, 1
	case tokAmp:
		return OpConcat, 2
	case tokPlus:
		return OpAdd, 3
	case tokMinus:
		return OpSub, 3
	case tokStar:
		return OpMul, 4
	case tokSlash:
		return OpDiv, 4
	case tokCaret:
		return OpPow, 5
	default:
		return 0, 0
	}
}

func (p *parser) parseExpr(minPrec int) (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, prec := binPrec(p.tok.kind)
		if prec == 0 || prec < minPrec {
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseExpr(prec + 1) // all ops left-associative
		if err != nil {
			return nil, err
		}
		left = BinaryNode{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Node, error) {
	switch p.tok.kind {
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryNode{Op: "-", X: x}, nil
	case tokPlus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryNode{Op: "+", X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Node, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPercent {
		x = UnaryNode{Op: "%", X: x}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Node, error) {
	switch p.tok.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, errParse(p.src, p.tok.pos, "bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return NumberLit(f), nil

	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return StringLit(s), nil

	case tokError:
		code := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return ErrorLit(code), nil

	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseExpr(1)
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, errParse(p.src, p.tok.pos, "expected ')', found %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil

	case tokIdent:
		return p.parseIdent()
	}
	return nil, errParse(p.src, p.tok.pos, "expected expression, found %s", p.tok.kind)
}

// parseIdent disambiguates identifiers: function call, boolean literal, cell
// reference, or range.
func (p *parser) parseIdent() (Node, error) {
	name := p.tok.text
	pos := p.tok.pos

	next, err := p.peekTok()
	if err != nil {
		return nil, err
	}
	if next.kind == tokLParen {
		return p.parseCall(strings.ToUpper(name))
	}
	if next.kind == tokBang {
		return p.parseExtRef(name, pos)
	}

	switch strings.ToUpper(name) {
	case "TRUE":
		if err := p.advance(); err != nil {
			return nil, err
		}
		return BoolLit(true), nil
	case "FALSE":
		if err := p.advance(); err != nil {
			return nil, err
		}
		return BoolLit(false), nil
	}

	ref, err := cell.ParseRef(name)
	if err != nil {
		return nil, errParse(p.src, pos, "unknown identifier %q", name)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokColon {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, errParse(p.src, p.tok.pos, "expected range end after ':'")
		}
		to, err := cell.ParseRef(p.tok.text)
		if err != nil {
			return nil, errParse(p.src, p.tok.pos, "bad range end %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return RangeNode{From: ref, To: to}, nil
	}
	return RefNode{Ref: ref}, nil
}

// parseExtRef parses a cross-sheet reference: name!ref or name!ref:ref.
// The current token is the sheet name; the peeked token is '!'. Sheet
// names are plain identifiers (the dialect has no quoting form), kept in
// the case they were written.
func (p *parser) parseExtRef(sheetName string, pos int) (Node, error) {
	if err := p.advance(); err != nil { // onto '!'
		return nil, err
	}
	if err := p.advance(); err != nil { // past '!'
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, errParse(p.src, p.tok.pos, "expected cell reference after %q!, found %s", sheetName, p.tok.kind)
	}
	from, err := cell.ParseRef(p.tok.text)
	if err != nil {
		return nil, errParse(p.src, p.tok.pos, "bad cell reference %q after %q!", p.tok.text, sheetName)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokColon {
		return ExtRefNode{Sheet: sheetName, From: from}, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, errParse(p.src, p.tok.pos, "expected range end after ':'")
	}
	to, err := cell.ParseRef(p.tok.text)
	if err != nil {
		return nil, errParse(p.src, p.tok.pos, "bad range end %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return ExtRefNode{Sheet: sheetName, From: from, To: to, IsRange: true}, nil
}

func (p *parser) parseCall(name string) (Node, error) {
	// current token is the name; next is '('
	if err := p.advance(); err != nil { // onto '('
		return nil, err
	}
	if err := p.advance(); err != nil { // past '('
		return nil, err
	}
	var args []Node
	if p.tok.kind != tokRParen {
		for {
			a, err := p.parseExpr(1)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.tok.kind != tokRParen {
		return nil, errParse(p.src, p.tok.pos, "expected ')' closing %s(...), found %s", name, p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return CallNode{Name: name, Args: args}, nil
}
