// Package floatgood holds float comparisons the check must NOT flag.
package floatgood

type val struct {
	Num  float64
	Kind int
}

// numEq is the allowlisted helper: inline comparison allowed inside.
func numEq(a, b float64) bool { return a == b }

// zeroGuard: integer-literal sentinels are intentional exact checks.
func zeroGuard(y float64) bool { return y == 0 }

// oneGuard: any integer literal qualifies, negated too.
func oneGuard(base float64) bool { return base != 1 && base != -1 }

// viaHelper: routed comparisons are clean.
func viaHelper(a, b float64) bool { return numEq(a, b) }

// intCompare: plain int comparisons are out of scope.
func intCompare(v val, k int) bool { return v.Kind == k }

// boolCompare: comparison results compared as bools are not floats, even
// though the operands of the inner comparisons are.
func boolCompare(m, y float64) bool { return (m < 0) != (y < 0) }

// stringCompare: untouched.
func stringCompare(a, b string) bool { return a == b }
