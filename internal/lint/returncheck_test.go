package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestReturnBadPackageIsFullyFlagged(t *testing.T) {
	diags, err := ReturnCheck.RunDir(filepath.Join("testdata", "src", "returnbad"))
	if err != nil {
		t.Fatal(err)
	}
	// One finding per `// want:` comment in returnbad.go.
	const want = 6
	if len(diags) != want {
		t.Fatalf("findings = %d, want %d:\n%s", len(diags), want, join(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Pos, "returnbad.go") {
			t.Errorf("finding outside returnbad.go: %s", d)
		}
		if !strings.Contains(d.Message, "discarded") {
			t.Errorf("unexpected message: %s", d)
		}
	}
}

func TestReturnGoodPackageIsClean(t *testing.T) {
	diags, err := ReturnCheck.RunDir(filepath.Join("testdata", "src", "returngood"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("false positives:\n%s", join(diags))
	}
}

// TestWritersAreReturnCheckClean is the real gate: the codec, the report
// renderer, and every command driver must check their write errors.
func TestWritersAreReturnCheckClean(t *testing.T) {
	for _, dir := range ReturnCheck.DefaultDirs {
		diags, err := ReturnCheck.RunDir(filepath.Join("..", "..", dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if len(diags) != 0 {
			t.Errorf("%s has findings:\n%s", dir, join(diags))
		}
	}
}
