package obs

import (
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	withTracing(t)
	reg := NewRegistry()
	a := reg.Counter("cells", "excel")
	b := reg.Counter("cells", "excel")
	if a != b {
		t.Fatal("same (name,label) must return the same handle")
	}
	if reg.Counter("cells", "calc") == a {
		t.Fatal("different labels must be distinct instruments")
	}
	a.Add(5)
	b.Add(2)
	if a.Value() != 7 {
		t.Fatalf("counter = %d, want 7", a.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	withTracing(t)
	reg := NewRegistry()
	h := reg.Histogram("lat", "x", []float64{10, 100, 500})
	h.Observe(5)                              // bucket 0 (<=10)
	h.Observe(10)                             // bucket 0 (boundary inclusive)
	h.Observe(50)                             // bucket 1
	h.ObserveDuration(700 * time.Millisecond) // overflow
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	hs := snap.Histograms[0]
	want := []int64{2, 1, 0, 1}
	if len(hs.Counts) != len(want) {
		t.Fatalf("counts = %v, want %v", hs.Counts, want)
	}
	for i := range want {
		if hs.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", hs.Counts, want)
		}
	}
	if hs.Count != 4 {
		t.Fatalf("count = %d, want 4", hs.Count)
	}
	if hs.SumMS < 764 || hs.SumMS > 766 {
		t.Fatalf("sum = %v ms, want ~765", hs.SumMS)
	}
}

func TestSLOBoundIsBucketBoundary(t *testing.T) {
	for _, b := range DefaultLatencyBucketsMS {
		if b == 500 {
			return
		}
	}
	t.Fatal("500 ms must be a default latency bucket boundary")
}

func TestSnapshotSortedAndReset(t *testing.T) {
	withTracing(t)
	reg := NewRegistry()
	reg.Counter("z", "a").Add(1)
	reg.Counter("a", "b").Add(2)
	reg.Counter("a", "a").Add(3)
	reg.Aggregate("agg", "x").Add(2, 4*time.Millisecond)
	snap := reg.Snapshot()
	if len(snap.Counters) != 3 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	order := []struct{ n, l string }{{"a", "a"}, {"a", "b"}, {"z", "a"}}
	for i, want := range order {
		if snap.Counters[i].Name != want.n || snap.Counters[i].Label != want.l {
			t.Fatalf("counter order: %+v", snap.Counters)
		}
	}
	if snap.Aggregates[0].Count != 2 || snap.Aggregates[0].TotalNS != int64(4*time.Millisecond) {
		t.Fatalf("aggregate: %+v", snap.Aggregates[0])
	}

	reg.ResetValues()
	snap = reg.Snapshot()
	if snap.Counters[2].Value != 0 || snap.Aggregates[0].Count != 0 {
		t.Fatalf("reset left values: %+v", snap)
	}
	// Handles created before the reset keep working.
	reg.Counter("z", "a").Add(9)
	if reg.Counter("z", "a").Value() != 9 {
		t.Fatal("handle dead after ResetValues")
	}
}

func TestNilInstrumentsSafe(t *testing.T) {
	var c *Counter
	var h *Histogram
	var a *Aggregate
	c.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	a.Add(1, time.Second)
	a.ObserveSince(time.Now())
	if c.Value() != 0 || a.Count() != 0 || a.Total() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}
