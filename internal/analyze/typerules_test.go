package analyze

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/sheet"
)

func TestRuleErrorBlastRadius(t *testing.T) {
	// A1 may divide by zero; B1..B4 inherit it transitively, one per link.
	s := mkSheet(t, map[string]cell.Value{"A2": cell.Num(0)}, map[string]string{
		"A1": "=1/A2",
		"B1": "=A1+1",
		"B2": "=B1+1",
		"B3": "=B2+1",
		"B4": "=B3+1",
		"C1": "=5+6", // unrelated, error-free
	})
	sr := SheetReportFor(s, Options{})
	fs := findingsFor(sr, RuleErrorBlast)
	if len(fs) != 1 {
		t.Fatalf("error-blast findings = %d, want 1:\n%+v", len(fs), sr.Findings)
	}
	f := fs[0]
	if f.Cell != "A1" || f.Severity != High || f.Cost != 4 {
		t.Errorf("finding = %+v, want cell A1, severity high, cost 4", f)
	}
	if !strings.Contains(f.Message, cell.ErrDiv0) {
		t.Errorf("message %q should name the possible error", f.Message)
	}
}

func TestRuleErrorBlastBelowThresholdIsSilent(t *testing.T) {
	// Same shape but only 3 dependents: below the default threshold of 4.
	s := mkSheet(t, map[string]cell.Value{"A2": cell.Num(0)}, map[string]string{
		"A1": "=1/A2",
		"B1": "=A1+1",
		"B2": "=B1+1",
		"B3": "=B2+1",
	})
	sr := SheetReportFor(s, Options{})
	if fs := findingsFor(sr, RuleErrorBlast); len(fs) != 0 {
		t.Errorf("unexpected findings below threshold: %+v", fs)
	}
	// Lowering the threshold surfaces it.
	sr = SheetReportFor(s, Options{ErrorBlastMin: 1})
	if fs := findingsFor(sr, RuleErrorBlast); len(fs) != 1 {
		t.Errorf("findings with ErrorBlastMin=1 = %d, want 1", len(fs))
	}
}

func TestRuleErrorBlastIgnoresCyclesAndAbsorbed(t *testing.T) {
	s := mkSheet(t, map[string]cell.Value{"A3": cell.Num(0)}, map[string]string{
		"A1": "=A2",              // cycle: certain, RuleCycle's business
		"A2": "=A1",              //
		"A4": "=IFERROR(1/A3,0)", // absorbed before anyone sees it
		"B1": "=A4+1",
		"B2": "=B1+1",
		"B3": "=B2+1",
		"B4": "=B3+1",
	})
	sr := SheetReportFor(s, Options{ErrorBlastMin: 1})
	if fs := findingsFor(sr, RuleErrorBlast); len(fs) != 0 {
		t.Errorf("cycle/absorbed errors must not fire error-blast: %+v", fs)
	}
	if n := sr.RuleCounts[RuleCycle]; n == 0 {
		t.Error("cycle rule should still report the loop")
	}
}

// coercionSheet builds a tall sheet with a numeric-criterion COUNTIF over
// column A, whose cells are numbers except one optional text cell.
func coercionSheet(t *testing.T, rows int, withText bool) *sheet.Sheet {
	t.Helper()
	s := sheet.New("test", rows+1, 4)
	for r := 1; r <= rows; r++ {
		s.SetValue(cell.Addr{Row: r, Col: 0}, cell.Num(float64(r)))
	}
	if withText {
		s.SetValue(cell.Addr{Row: rows / 2, Col: 0}, cell.Str("n/a"))
	}
	c, err := formula.Compile(fmt.Sprintf(`=COUNTIF(A2:A%d,">=5")`, rows+1))
	if err != nil {
		t.Fatal(err)
	}
	s.SetFormula(cell.Addr{Row: 1, Col: 2}, c)
	return s
}

func TestRuleCoercionHotPath(t *testing.T) {
	sr := SheetReportFor(coercionSheet(t, 200, true), Options{})
	fs := findingsFor(sr, RuleCoercion)
	if len(fs) != 1 {
		t.Fatalf("coercion findings = %d, want 1:\n%+v", len(fs), sr.Findings)
	}
	f := fs[0]
	if f.Cell != "C2" || f.Severity != Warn || f.Cost != 200 {
		t.Errorf("finding = %+v, want cell C2, severity warn, cost 200", f)
	}
	if !strings.Contains(f.Message, "COUNTIF") {
		t.Errorf("message %q should name the aggregate", f.Message)
	}
}

func TestRuleCoercionRequiresTextAndWidth(t *testing.T) {
	// All-numeric range: nothing to coerce, however wide.
	sr := SheetReportFor(coercionSheet(t, 200, false), Options{})
	if fs := findingsFor(sr, RuleCoercion); len(fs) != 0 {
		t.Errorf("all-numeric range fired coercion: %+v", fs)
	}
	// Text present but the range is narrower than the threshold.
	sr = SheetReportFor(coercionSheet(t, 60, true), Options{})
	if fs := findingsFor(sr, RuleCoercion); len(fs) != 0 {
		t.Errorf("narrow range fired coercion: %+v", fs)
	}
	// Narrow range fires once the threshold is lowered.
	sr = SheetReportFor(coercionSheet(t, 60, true), Options{CoercionMinCells: 16})
	if fs := findingsFor(sr, RuleCoercion); len(fs) != 1 {
		t.Errorf("findings with CoercionMinCells=16 = %d, want 1", len(fs))
	}
}
