package formula

import (
	"math"
	"time"

	"repro/internal/cell"
	"repro/internal/costmodel"
	"repro/internal/obs"
)

// Source supplies cell values to the evaluator. A worksheet implements it;
// tests use map-backed fakes.
type Source interface {
	// Value returns the displayed value of the cell (for a formula cell,
	// its cached result).
	Value(a cell.Addr) cell.Value
}

// Env is the evaluation environment: the value source, the work meter the
// evaluator charges (may be nil for unmetered evaluation), and the clock
// used by volatile time functions (defaults to time.Now).
type Env struct {
	Src   Source
	Meter *costmodel.Meter
	Now   func() time.Time
	// Lookup selects the algorithms used by VLOOKUP/HLOOKUP/MATCH; the
	// zero value is the fully naive full-scan behavior (§4.3.4).
	Lookup LookupPolicy
	// Rand supplies RAND()'s uniform [0,1) stream; when nil, a
	// deterministic per-Env xorshift stream is used so benchmark runs and
	// tests stay reproducible.
	Rand func() float64
	// randState backs the default deterministic RAND stream.
	randState uint64
	// DR and DC translate every *relative* reference component by this
	// many rows/columns before resolution. The engine sets them to the
	// formula's displacement from where its text was authored, so a
	// formula that moved (sort, copy-paste) keeps relative semantics
	// without text rewriting — the R1C1 trick real engines use.
	DR, DC int
	// Ext resolves a sheet name in a cross-sheet reference to that sheet's
	// value source. When nil (or when it returns nil for an unknown name),
	// cross-sheet references evaluate to #REF!.
	Ext func(sheetName string) Source
	// SortedAsc, when non-nil, reports whether rows [r0, r1] of the given
	// column on the given source are certified — under the current sheet
	// state — to be an ascending all-Number run. The engine backs it with
	// version-keyed value certificates (internal/engine/valuecert.go);
	// under that precondition exact VLOOKUP/MATCH switch from linear scan
	// to binary search with identical results, and approximate matches
	// may binary-search even without ApproxBinarySearch.
	SortedAsc func(src Source, col, r0, r1 int) bool
}

// certifiedAsc reports whether the column run is certified ascending
// all-Number under the current state (false without a certifier).
func (e *Env) certifiedAsc(src Source, col, r0, r1 int) bool {
	return e.SortedAsc != nil && e.SortedAsc(src, col, r0, r1)
}

// external resolves a cross-sheet name, nil when unresolvable.
func (e *Env) external(name string) Source {
	if e.Ext == nil {
		return nil
	}
	return e.Ext(name)
}

// shift resolves a reference under the environment's displacement:
// absolute components stay put, relative components translate.
func (e *Env) shift(r cell.Ref) cell.Addr {
	a := r.Addr
	if !r.AbsRow {
		a.Row += e.DR
	}
	if !r.AbsCol {
		a.Col += e.DC
	}
	return a
}

// shiftRange resolves a range under the displacement.
func (e *Env) shiftRange(n RangeNode) cell.Range {
	return cell.RangeOf(e.shift(n.From), e.shift(n.To))
}

func (e *Env) add(m costmodel.Metric, n int64) {
	if e.Meter != nil {
		e.Meter.Add(m, n)
	}
}

func (e *Env) now() time.Time {
	if e.Now != nil {
		return e.Now()
	}
	return time.Now()
}

// rand returns the next uniform [0,1) variate.
func (e *Env) rand() float64 {
	if e.Rand != nil {
		return e.Rand()
	}
	if e.randState == 0 {
		e.randState = 0x9E3779B97F4A7C15
	}
	x := e.randState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	e.randState = x
	return float64(x>>11) / float64(1<<53)
}

// value reads one cell, charging one reference resolution and one cell
// touch — the cell-by-cell reference model of §5.3.
func (e *Env) value(a cell.Addr) cell.Value {
	return e.valueFrom(e.Src, a)
}

// valueFrom is value against an explicit source (the host sheet or a
// foreign sheet resolved from a cross-sheet reference).
func (e *Env) valueFrom(src Source, a cell.Addr) cell.Value {
	e.add(costmodel.RefResolve, 1)
	e.add(costmodel.CellTouch, 1)
	return src.Value(a)
}

// rangeTouch charges the cost of scanning n cells of a range argument. The
// per-cell resolution inside a contiguous range is cheaper than an explicit
// reference (no address decoding per cell) so it charges CellTouch only.
func (e *Env) rangeTouch(n int64) { e.add(costmodel.CellTouch, n) }

// operand is an evaluated argument: either a scalar value or an unexpanded
// range (ranges stay lazy so aggregate functions can stream them). A range
// operand carries the source it resolves against: nil means the host
// sheet (env.Src); a cross-sheet range carries the foreign sheet.
type operand struct {
	val     cell.Value
	rng     cell.Range
	isRange bool
	src     Source // nil = env.Src
}

func scalarOp(v cell.Value) operand { return operand{val: v} }

// source returns the value source this operand's cells resolve against.
func (o operand) source(e *Env) Source {
	if o.src != nil {
		return o.src
	}
	return e.Src
}

// scalar collapses the operand to a single value; a multi-cell range used in
// scalar position is a #VALUE! error (the common dialect behavior outside
// of implicit-intersection contexts, which the benchmark does not use).
func (o operand) scalar(e *Env) cell.Value {
	if !o.isRange {
		return o.val
	}
	if o.rng.Cells() == 1 {
		return e.valueFrom(o.source(e), o.rng.Start)
	}
	return cell.Errorf(cell.ErrValue)
}

// eachCell streams the cells of the operand in row-major order. For a
// scalar operand the single value is yielded. Iteration stops early when f
// returns false.
func (o operand) eachCell(e *Env, f func(v cell.Value) bool) {
	if !o.isRange {
		f(o.val)
		return
	}
	src := o.source(e)
	for r := o.rng.Start.Row; r <= o.rng.End.Row; r++ {
		for c := o.rng.Start.Col; c <= o.rng.End.Col; c++ {
			e.rangeTouch(1)
			if !f(src.Value(cell.Addr{Row: r, Col: c})) {
				return
			}
		}
	}
}

// Eval evaluates a compiled formula, charging one FormulaEval plus the work
// of every reference it resolves.
func Eval(c *Compiled, env *Env) cell.Value {
	if obs.Enabled() {
		defer evalTime.ObserveSince(time.Now())
	}
	env.add(costmodel.FormulaEval, 1)
	return evalNode(c.Root, env).scalar(env)
}

// EvalNode evaluates a bare AST node to a scalar value; exported for tests.
func EvalNode(n Node, env *Env) cell.Value {
	return evalNode(n, env).scalar(env)
}

func evalNode(n Node, env *Env) operand {
	switch t := n.(type) {
	case NumberLit:
		return scalarOp(cell.Num(float64(t)))
	case StringLit:
		return scalarOp(cell.Str(string(t)))
	case BoolLit:
		return scalarOp(cell.Boolean(bool(t)))
	case ErrorLit:
		return scalarOp(cell.Errorf(string(t)))
	case RefNode:
		return scalarOp(env.value(env.shift(t.Ref)))
	case RangeNode:
		return operand{rng: env.shiftRange(t), isRange: true}
	case ExtRefNode:
		src := env.external(t.Sheet)
		if src == nil {
			return scalarOp(cell.Errorf(cell.ErrRef))
		}
		if !t.IsRange {
			return scalarOp(env.valueFrom(src, env.shift(t.From)))
		}
		return operand{
			rng:     cell.RangeOf(env.shift(t.From), env.shift(t.To)),
			isRange: true,
			src:     src,
		}
	case CallNode:
		return evalCall(t, env)
	case BinaryNode:
		return scalarOp(evalBinary(t, env))
	case UnaryNode:
		return scalarOp(evalUnary(t, env))
	default:
		return scalarOp(cell.Errorf(cell.ErrValue))
	}
}

func evalCall(call CallNode, env *Env) operand {
	fn, ok := functions[call.Name]
	if !ok {
		return scalarOp(cell.Errorf(cell.ErrName))
	}
	if len(call.Args) < fn.minArgs || (fn.maxArgs >= 0 && len(call.Args) > fn.maxArgs) {
		return scalarOp(cell.Errorf(cell.ErrValue))
	}
	args := make([]operand, len(call.Args))
	for i, a := range call.Args {
		args[i] = evalNode(a, env)
	}
	return scalarOp(fn.impl(env, args))
}

func evalBinary(b BinaryNode, env *Env) cell.Value {
	l := evalNode(b.L, env).scalar(env)
	if l.IsError() {
		return l
	}
	r := evalNode(b.R, env).scalar(env)
	if r.IsError() {
		return r
	}

	switch b.Op {
	case OpConcat:
		return cell.Str(l.AsString() + r.AsString())
	case OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE:
		env.add(costmodel.Compare, 1)
		return compareValues(b.Op, l, r)
	}

	lf, lok := l.AsNumber()
	rf, rok := r.AsNumber()
	if !lok || !rok {
		return cell.Errorf(cell.ErrValue)
	}
	switch b.Op {
	case OpAdd:
		return cell.Num(lf + rf)
	case OpSub:
		return cell.Num(lf - rf)
	case OpMul:
		return cell.Num(lf * rf)
	case OpDiv:
		if rf == 0 {
			return cell.Errorf(cell.ErrDiv0)
		}
		return cell.Num(lf / rf)
	case OpPow:
		return cell.Num(math.Pow(lf, rf))
	default:
		return cell.Errorf(cell.ErrValue)
	}
}

// compareValues implements spreadsheet comparison semantics: numbers compare
// numerically, strings case-insensitively, mixed number/string compare with
// numbers < text (the shared dialect rule).
func compareValues(op BinOp, l, r cell.Value) cell.Value {
	c := l.Compare(r)
	switch op {
	case OpEQ:
		return cell.Boolean(l.Equal(r))
	case OpNE:
		return cell.Boolean(!l.Equal(r))
	case OpLT:
		return cell.Boolean(c < 0)
	case OpLE:
		return cell.Boolean(c <= 0)
	case OpGT:
		return cell.Boolean(c > 0)
	case OpGE:
		return cell.Boolean(c >= 0)
	default:
		return cell.Errorf(cell.ErrValue)
	}
}

func evalUnary(u UnaryNode, env *Env) cell.Value {
	v := evalNode(u.X, env).scalar(env)
	if v.IsError() {
		return v
	}
	f, ok := v.AsNumber()
	if !ok {
		return cell.Errorf(cell.ErrValue)
	}
	switch u.Op {
	case "-":
		return cell.Num(-f)
	case "+":
		return cell.Num(f)
	case "%":
		return cell.Num(f / 100)
	default:
		return cell.Errorf(cell.ErrValue)
	}
}
