package core

import (
	"time"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// table2Sources maps each Table 2 row to its experiment and the series
// labels providing the F and V curves ("" = not measured, rendered "x").
var table2Sources = []struct {
	Row     string
	ExpID   string
	FSuffix string
	VSuffix string
}{
	{"Open", "fig2-open", "/F", "/V"},
	{"Sort", "fig3-sort", "/F", "/V"},
	{"Conditional Formatting", "fig4-condfmt", "/F", "/V"},
	{"Filter", "fig5-filter", "/F", "/V"},
	{"Pivot Table", "fig6-pivot", "/F", "/V"},
	{"COUNTIF", "fig7-countif", "/F", "/V"},
	// §4.3.4 runs VLOOKUP on Value-only data only; the exact-match scan
	// (sorted=FALSE) is the Table 2 entry.
	{"VLOOKUP", "fig8-vlookup", "", "/sorted=false"},
}

// Table2 derives the interactivity summary (Table 2, §4.4) from the BCT
// results: for every experiment, system, and dataset variant, the first
// sweep size whose simulated latency exceeds the 500 ms bound, expressed as
// a percentage of the system's documented scalability limit (1M rows
// desktop, 5M cells web). "100" means no violation at any measured size;
// "x" means not measured.
func Table2(results map[string]*Result, systems []string) []report.Table2Row {
	var rows []report.Table2Row
	for _, src := range table2Sources {
		row := report.Table2Row{Experiment: src.Row, Cells: map[string]string{}}
		res := results[src.ExpID]
		for _, sys := range systems {
			row.Cells[sys+"/F"] = violationCell(res, sys, src.FSuffix)
			row.Cells[sys+"/V"] = violationCell(res, sys, src.VSuffix)
		}
		rows = append(rows, row)
	}
	return rows
}

func violationCell(res *Result, sys, suffix string) string {
	if res == nil || suffix == "" {
		return "x"
	}
	s := res.findSeries(sys + suffix)
	if s == nil {
		// Case-insensitive fallback for boolean-suffixed labels.
		for i := range res.Series {
			if equalFold(res.Series[i].Label, sys+suffix) {
				s = &res.Series[i]
				break
			}
		}
	}
	if s == nil || len(s.Points) == 0 {
		return "x"
	}
	sizes := make([]int, len(s.Points))
	sims := make([]time.Duration, len(s.Points))
	for i, p := range s.Points {
		sizes[i] = p.Size
		sims[i] = p.Sim
	}
	size, violated := stats.InteractivityViolation(sizes, sims, InteractivityBound)
	if !violated {
		// "100" only when the sweep reached the paper's full extent;
		// a capped quick-mode sweep can only certify ">max%".
		maxMeasured := 0
		for _, m := range sizes {
			if m > maxMeasured {
				maxMeasured = m
			}
		}
		fullExtent := 500_000
		if isWeb(sys) {
			fullExtent = 90_000
		}
		if maxMeasured >= fullExtent {
			return "100"
		}
		return ">" + report.FormatLimitPercent(limitFraction(sys, maxMeasured))
	}
	return report.FormatLimitPercent(limitFraction(sys, size))
}

// limitFraction converts a violating row count to the fraction of the
// system's scalability limit, following §4.4's method (rows/1M for desktop;
// rows x 17 columns / 5M cells for the web system).
func limitFraction(sys string, rows int) float64 {
	if isWeb(sys) {
		return float64(rows*workload.NumCols) / float64(WebCellLimit)
	}
	return float64(rows) / float64(DesktopRowLimit)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// RunBCT runs every BCT experiment and returns the results keyed by ID.
func RunBCT(cfg *Config) (map[string]*Result, error) {
	return runKind(cfg, "bct")
}

// RunOOT runs every OOT experiment and returns the results keyed by ID.
func RunOOT(cfg *Config) (map[string]*Result, error) {
	return runKind(cfg, "oot")
}

func runKind(cfg *Config, kind string) (map[string]*Result, error) {
	out := make(map[string]*Result)
	for _, e := range Experiments() {
		if e.Kind != kind {
			continue
		}
		res, err := e.Run(cfg)
		if err != nil {
			return out, err
		}
		out[e.ID] = res
	}
	return out, nil
}
