// Command formula2sql translates spreadsheet formulae into SQL over the
// weather dataset's schema — the §6 research direction of executing
// spreadsheet computation on a database backend [21, 25, 30].
//
// Usage:
//
//	formula2sql [-table name] [-rows n] '=COUNTIF(J2:J50001,1)' ...
//	formula2sql -join            # the column-of-VLOOKUPs -> JOIN example
//	echo '=SUM(A2:A100)' | formula2sql
//
// Formulae may be passed as arguments or one per line on stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/formula"
	"repro/internal/sqlgen"
	"repro/internal/workload"
)

func main() {
	var (
		table = flag.String("table", "weather", "SQL table name for the sheet")
		rows  = flag.Int("rows", 100, "dataset rows (affects only the schema header sampling)")
		join  = flag.Bool("join", false, "print the column-of-VLOOKUPs-to-JOIN example and exit")
		ddl   = flag.Bool("ddl", false, "also print the CREATE TABLE statement")
	)
	flag.Parse()

	wb := workload.Weather(workload.Spec{Rows: *rows})
	schema := sqlgen.SchemaOf(wb.First(), *table)

	if *ddl {
		fmt.Println(schema.CreateTable())
	}
	if *join {
		scores := sqlgen.Schema{Table: "scores", Columns: []string{"student", "score"}}
		grades := sqlgen.Schema{Table: "grades", Columns: []string{"floor", "grade"}}
		sql, err := sqlgen.TranslateVlookupColumn(scores, 1, grades, 0, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "formula2sql:", err)
			os.Exit(1)
		}
		fmt.Println("-- a column of =VLOOKUP(score, grades, 2, TRUE) becomes:")
		fmt.Println(sql)
		return
	}

	translate := func(text string) {
		c, err := formula.Compile(text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "formula2sql: %v\n", err)
			os.Exit(1)
		}
		sql, err := sqlgen.TranslateFormula(schema, c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "formula2sql: %s: %v\n", text, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s\n%s\n", text, sql)
	}

	if flag.NArg() > 0 {
		for _, text := range flag.Args() {
			translate(text)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if line != "" {
			translate(line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "formula2sql:", err)
		os.Exit(1)
	}
}
