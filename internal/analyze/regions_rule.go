package analyze

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/regions"
	"repro/internal/sheet"
)

// checkBrokenFill implements RuleBrokenFill: a column that is almost — but
// not quite — a uniform fill region. One dominant R1C1 class covers at
// least three quarters of the column's formulas, yet a handful of deviant
// cells chop it into several regions, so region-level sequencing (the
// RegionGraph optimization), shared-formula storage, and fill-down editing
// all lose their compression. Usually the deviants are hand-edited cells a
// later fill-down missed. The finding anchors at the first deviant; Cost is
// the deviant count.
func checkBrokenFill(e *emitter, s *sheet.Sheet, sr *regions.SheetRegions, opt Options) {
	type colStat struct {
		col     int
		regions []regions.Region
	}
	var cols []colStat
	for _, r := range sr.Regions {
		if len(cols) == 0 || cols[len(cols)-1].col != r.Col {
			cols = append(cols, colStat{col: r.Col})
		}
		cs := &cols[len(cols)-1]
		cs.regions = append(cs.regions, r)
	}
	for _, cs := range cols {
		total := 0
		perClass := make(map[int]int)
		for _, r := range cs.regions {
			total += r.Rows()
			perClass[r.Class] += r.Rows()
		}
		if total < opt.BrokenFillMin || len(cs.regions) < 2 {
			continue
		}
		dominant, covered := -1, 0
		for class, n := range perClass {
			if n > covered || (n == covered && class < dominant) {
				dominant, covered = class, n
			}
		}
		deviants := total - covered
		// A perfectly uniform column split only by blank gaps is fill
		// style, not an error; the rule wants inconsistent formulas.
		if deviants == 0 || covered*4 < total*3 {
			continue
		}
		var anchor cell.Addr
		found := false
		for _, r := range cs.regions {
			if r.Class != dominant {
				anchor = cell.Addr{Row: r.Start, Col: r.Col}
				found = true
				break
			}
		}
		if !found {
			continue
		}
		e.emit(Finding{
			Rule:     RuleBrokenFill,
			Severity: Warn,
			Sheet:    s.Name,
			Cell:     anchor.A1(),
			Message: fmt.Sprintf("column %s: %d of %d formula(s) deviate from the dominant fill pattern %s, splitting it into %d region(s)",
				cell.ColName(cs.col), deviants, total, truncateText(sr.Classes[dominant].Text, 40), len(cs.regions)),
			Cost: int64(deviants),
		})
	}
}

// truncateText shortens rule message payloads for report hygiene.
func truncateText(t string, max int) string {
	if len(t) > max {
		return t[:max-3] + "..."
	}
	return t
}
