package fuzzdiff

import "repro/internal/tracelang"

// Minimize greedily shrinks a failing op sequence: it repeatedly tries to
// delete chunks (halving the chunk size from len/2 down to 1) and keeps any
// deletion after which the sequence still fails. The result is 1-minimal
// with respect to single-op deletion — removing any one remaining op makes
// the failure disappear — which in practice lands well under ten ops for
// single-cause engine bugs.
func Minimize(ops []tracelang.Op, fails func([]tracelang.Op) bool) []tracelang.Op {
	cur := append([]tracelang.Op(nil), ops...)
	for chunk := maxInt(len(cur)/2, 1); chunk >= 1; chunk /= 2 {
		for start := 0; start < len(cur); {
			end := minInt(start+chunk, len(cur))
			cand := make([]tracelang.Op, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) < len(cur) && fails(cand) {
				cur = cand // chunk removed; retry the same start offset
			} else {
				start += chunk
			}
		}
	}
	return cur
}

// MinimizeFailure re-runs the differential harness to shrink a failing
// sequence, returning the Failure for the minimized sequence (whose Ops
// field, and therefore Script(), is the minimal repro trace). Returns nil
// if the sequence does not actually fail under cfg.
func MinimizeFailure(cfg Config, ops []tracelang.Op) *Failure {
	fails := func(cand []tracelang.Op) bool { return Run(cfg, cand) != nil }
	if !fails(ops) {
		return nil
	}
	return Run(cfg, Minimize(ops, fails))
}
