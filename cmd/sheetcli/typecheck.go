package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/iolib"
	"repro/internal/sheet"
	"repro/internal/typecheck"
	"repro/internal/workload"
)

// runTypecheck implements the `sheetcli typecheck` subcommand: it loads a
// workbook (an .svf file argument, or a generated weather dataset with the
// analysis summary block) and prints the static type & error-flow
// inference report (internal/typecheck) — per-column kind summaries with
// numeric certificates, error-possible formulas, and cells whose stored
// value disagrees with the inferred possibility set — without evaluating a
// single formula.
//
// Usage: sheetcli typecheck [-json] [-rows n] [-seed n] [-list n] [file.svf]
func runTypecheck(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("typecheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	rows := fs.Int("rows", 5000, "rows of the generated weather dataset (ignored with a file argument)")
	seed := fs.Uint64("seed", 0, "generator seed; 0 means the default")
	list := fs.Int("list", 0, "max listed cells per sheet and section; 0 means the default, -1 uncaps")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: sheetcli typecheck [-json] [-rows n] [-seed n] [-list n] [file.svf]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rows < 0 {
		fmt.Fprintln(errOut, "sheetcli: -rows must be non-negative")
		return 2
	}

	var wb *sheet.Workbook
	if fs.NArg() > 0 {
		res, err := iolib.LoadWorkbook(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(errOut, "sheetcli: %v\n", err)
			return 1
		}
		wb = res.Workbook
	} else {
		wb = workload.Weather(workload.Spec{
			Rows: *rows, Formulas: true, Seed: *seed, Analysis: true,
		})
	}

	res := typecheck.Workbook(wb, typecheck.Options{MaxList: *list})
	var err error
	if *jsonOut {
		err = res.WriteJSON(out)
	} else {
		err = res.WriteText(out)
	}
	if err != nil {
		fmt.Fprintf(errOut, "sheetcli: %v\n", err)
		return 1
	}
	return 0
}
