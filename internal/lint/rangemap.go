// The rangemap analyzer: the classic way Go code loses determinism is
// iterating a map and letting the iteration order leak into a returned
// slice.
//
// The check flags any `for ... range m` over a map-typed expression whose
// body appends to a slice that the enclosing function returns, unless a
// later statement in the same function passes that slice to something
// sort-like (a call whose qualified name contains "sort" — sort.Slice,
// sort.Strings, (*Graph).sortAddrs, ...).
//
// Type resolution is syntactic: a variable is map-typed if it is declared
// with a map type, assigned from make(map...) or a map literal, received as
// a map-typed parameter or result, or is a selector naming a map-typed
// struct field declared in the package. That resolves every map in this
// repository.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// RangeMap is the determinism analyzer. Its default gate covers the
// packages whose slice output feeds golden files and calc chains.
var RangeMap = &Analyzer{
	Name:        "rangemap",
	Doc:         "map iteration order must not leak into returned slices",
	DefaultDirs: []string{"internal/graph", "internal/analyze", "internal/typecheck", "internal/obs", "internal/perfbase"},
	Run: func(pkg *Package) []Diagnostic {
		return CheckFiles(pkg.Fset, pkg.Files)
	},
}

// CheckDir parses every non-test .go file of one package directory and
// returns the rangemap findings, sorted by position.
func CheckDir(dir string) ([]Diagnostic, error) {
	return RangeMap.RunDir(dir)
}

// CheckFiles runs the check over already-parsed files of one package.
func CheckFiles(fset *token.FileSet, files []*ast.File) []Diagnostic {
	mapFields := collectMapFields(files)
	var diags []Diagnostic
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, checkFunc(fset, fd, mapFields)...)
		}
	}
	return sortDiags(diags)
}

// collectMapFields gathers the names of map-typed struct fields declared
// anywhere in the package, so `recv.field` selectors resolve.
func collectMapFields(files []*ast.File) map[string]bool {
	fields := make(map[string]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fl := range st.Fields.List {
				if _, isMap := fl.Type.(*ast.MapType); !isMap {
					continue
				}
				for _, name := range fl.Names {
					fields[name.Name] = true
				}
			}
			return true
		})
	}
	return fields
}

// checkFunc analyzes one function body.
func checkFunc(fset *token.FileSet, fd *ast.FuncDecl, mapFields map[string]bool) []Diagnostic {
	mapVars := collectMapVars(fd)
	returned := collectReturnedSlices(fd)

	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !isMapExpr(rs.X, mapVars, mapFields) {
			return true
		}
		for _, target := range appendTargets(rs.Body) {
			if !returned[target] {
				continue
			}
			if sortedAfter(fd.Body, rs.End(), target) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos: fset.Position(rs.Pos()).String(),
				Message: fmt.Sprintf(
					"map iteration order leaks into returned slice %q; sort it before returning (or collect deterministically)",
					target),
			})
		}
		return true
	})
	return diags
}

// collectMapVars finds identifiers the function body (or signature) binds
// to map-typed values.
func collectMapVars(fd *ast.FuncDecl) map[string]bool {
	vars := make(map[string]bool)
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if _, isMap := f.Type.(*ast.MapType); !isMap {
				continue
			}
			for _, name := range f.Names {
				vars[name.Name] = true
			}
		}
	}
	addFieldList(fd.Type.Params)
	addFieldList(fd.Type.Results)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			if len(t.Lhs) != len(t.Rhs) {
				return true // multi-value call assignment: never a map literal
			}
			for i, lhs := range t.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && isMapValue(t.Rhs[i]) {
					vars[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if _, isMap := t.Type.(*ast.MapType); isMap {
				for _, name := range t.Names {
					vars[name.Name] = true
				}
			}
			for i, name := range t.Names {
				if i < len(t.Values) && isMapValue(t.Values[i]) {
					vars[name.Name] = true
				}
			}
		}
		return true
	})
	return vars
}

// isMapValue reports whether an expression syntactically produces a map:
// make(map[...]...) or a map composite literal.
func isMapValue(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.CallExpr:
		if id, ok := t.Fun.(*ast.Ident); ok && id.Name == "make" && len(t.Args) > 0 {
			_, isMap := t.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := t.Type.(*ast.MapType)
		return isMap
	}
	return false
}

// isMapExpr reports whether a range operand is map-typed under the
// syntactic resolver.
func isMapExpr(e ast.Expr, mapVars, mapFields map[string]bool) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return mapVars[t.Name]
	case *ast.SelectorExpr:
		return mapFields[t.Sel.Name]
	default:
		return isMapValue(e)
	}
}

// appendTargets returns the names of variables the block grows via
// `x = append(x, ...)`.
func appendTargets(body *ast.BlockStmt) []string {
	seen := make(map[string]bool)
	var targets []string
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
			return true
		}
		if !seen[lhs.Name] {
			seen[lhs.Name] = true
			targets = append(targets, lhs.Name)
		}
		return true
	})
	sort.Strings(targets)
	return targets
}

// collectReturnedSlices returns the set of identifiers the function hands
// to its caller: named results plus any identifier appearing as a return
// operand.
func collectReturnedSlices(fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, name := range f.Names {
				out[name.Name] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			if id, ok := e.(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether, lexically after pos, the function calls
// something sort-like with the named variable involved — the idiom that
// restores determinism after a map-order collect.
func sortedAfter(body *ast.BlockStmt, pos token.Pos, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !strings.Contains(strings.ToLower(calleeName(call)), "sort") {
			return true
		}
		if mentionsIdent(call, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeName renders a call's function expression as a dotted name
// ("sort.Slice", "g.sortAddrs", "sortAddrs"); empty for exotic callees.
func calleeName(call *ast.CallExpr) string {
	switch t := call.Fun.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		if x, ok := t.X.(*ast.Ident); ok {
			return x.Name + "." + t.Sel.Name
		}
		return t.Sel.Name
	}
	return ""
}

// mentionsIdent reports whether the subtree references the identifier.
func mentionsIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}
