package engine

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/costmodel"
	"repro/internal/sheet"
	"repro/internal/workload"
)

func TestAsyncRecalcCorrectAndComplete(t *testing.T) {
	eng, s := newTestEngine(t, "excel", 500, true)
	// Corrupt every cached formula value, then recompute asynchronously.
	s.EachFormula(func(a cell.Addr, _ sheet.Formula) bool {
		s.SetCachedValue(a, cell.Num(-99))
		return true
	})
	a, err := eng.RecalculateAsync(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
	done, total := a.Progress()
	if done != total || total != int64(s.FormulaCount()) {
		t.Errorf("progress %d/%d, formulas %d", done, total, s.FormulaCount())
	}
	if !a.WindowReady() {
		t.Error("window must be ready after Wait")
	}
	// Values restored.
	for dr := 1; dr <= 500; dr++ {
		want := 0.0
		if workload.EventAt(workload.DefaultSeed, dr, 0) == "STORM" {
			want = 1
		}
		if got := s.Value(cell.Addr{Row: dr, Col: workload.ColFormula0}).Num; got != want {
			t.Fatalf("row %d = %v, want %v", dr, got, want)
		}
	}
}

func TestAsyncRecalcReturnsImmediately(t *testing.T) {
	eng, s := newTestEngine(t, "excel", 5000, true)
	a, err := eng.RecalculateAsync(s)
	if err != nil {
		t.Fatal(err)
	}
	// The handle exists before completion (we cannot assert strict
	// concurrency on one core, but Progress must be readable mid-flight).
	_, total := a.Progress()
	if total != int64(s.FormulaCount()) {
		t.Errorf("total = %d", total)
	}
	if err := a.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncRecalcNilSheet(t *testing.T) {
	eng, _ := newTestEngine(t, "excel", 1, false)
	if _, err := eng.RecalculateAsync(nil); err == nil {
		t.Error("nil sheet must error")
	}
}

func TestApproxAggregateEstimates(t *testing.T) {
	eng, s := newTestEngine(t, "optimized", 5000, false)
	rng := cell.ColRange(workload.ColStorm, 1, 5000)

	exact := float64(countStorms(5000))
	res, err := eng.ApproxAggregate(s, "COUNTIF", rng, cell.Num(1), 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampledRows != 500 || res.TotalRows != 5000 {
		t.Errorf("sample %d/%d", res.SampledRows, res.TotalRows)
	}
	// The 95% interval should cover the truth with a deterministic seed
	// (checked once, so this is a fixed regression, not a flaky assert).
	if exact < res.Estimate-res.Margin || exact > res.Estimate+res.Margin {
		t.Errorf("COUNTIF estimate %v +- %v does not cover exact %v", res.Estimate, res.Margin, exact)
	}
	// Sampling must cost ~sample size, not population size.
	if touches := res.Cost.Work.Count(costmodel.CellTouch); touches > 600 {
		t.Errorf("sampling touched %d cells", touches)
	}

	// SUM scales up; full sample reproduces the exact value with zero
	// margin.
	full, err := eng.ApproxAggregate(s, "SUM", rng, cell.Value{}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if full.Estimate != exact {
		t.Errorf("full-sample SUM = %v, want %v", full.Estimate, exact)
	}
	if full.Margin != 0 {
		t.Errorf("full-sample margin = %v, want 0 (finite population correction)", full.Margin)
	}

	avg, err := eng.ApproxAggregate(s, "AVERAGE", rng, cell.Value{}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := avg.Estimate, exact/5000; got != want {
		t.Errorf("AVERAGE = %v, want %v", got, want)
	}
}

func TestApproxAggregateErrors(t *testing.T) {
	eng, s := newTestEngine(t, "excel", 100, false)
	if _, err := eng.ApproxAggregate(nil, "SUM", cell.Range{}, cell.Value{}, 10); err == nil {
		t.Error("nil sheet")
	}
	wide := cell.RangeOf(cell.Addr{Row: 1, Col: 0}, cell.Addr{Row: 10, Col: 3})
	if _, err := eng.ApproxAggregate(s, "SUM", wide, cell.Value{}, 10); err == nil {
		t.Error("multi-column range")
	}
	rng := cell.ColRange(0, 1, 100)
	if _, err := eng.ApproxAggregate(s, "MEDIAN", rng, cell.Value{}, 10); err == nil {
		t.Error("unsupported function")
	}
}
