// Package fuzzdiff is the differential op-sequence fuzzer: it drives every
// system profile through the same randomized sequence of user-facing
// operations (expressed in the trace mini-language, internal/tracelang) and
// asserts after EVERY operation that the engines' complete workbook states
// are identical — the optimized profile may reorganize storage, cache,
// index, and elide work, but it must never change a displayed value.
//
// Profiles are compared within semantics classes, keyed by the
// value-visible bits of the lookup policy (§4.3.4 / Figure 8): Excel's
// early-exit + binary-search lookups legitimately disagree with Calc's and
// Sheets' full scans once an edit un-sorts a lookup table, exactly as the
// real systems do. What must never differ is mechanism: "optimized" shares
// Excel's semantics, so optimized ≡ excel cell-for-cell after every op (and
// sheets ≡ calc), no matter what indexes or caches served the values.
//
// On top of the cross-profile comparison the harness cross-checks the
// static analyses on the baseline engine: type inference and the abstract
// interpreter's value inference must admit every computed value, and the
// parallel-safety certificate's stages must respect an independently
// rebuilt dependency graph. A failing sequence shrinks
// (minimize.go) to a minimal trace script replayable with
// `sheetcli trace -script`.
package fuzzdiff

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/absint"
	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/regions"
	"repro/internal/sheet"
	"repro/internal/tracelang"
	"repro/internal/typecheck"
	"repro/internal/workload"
)

// Baseline is the profile whose engine hosts the analysis cross-checks and
// whose state anchors divergence reports.
const Baseline = "excel"

// Config selects the fuzzed workload and how the differential run behaves.
type Config struct {
	Workload string // registered workload name (workload.ByName)
	Rows     int    // main-sheet data rows
	Seed     uint64 // generator seed (dataset and op sequence)
	// Profiles to run in lockstep; nil means every registered profile.
	Profiles []string
	// Checks enables the per-op analysis cross-checks (typecheck
	// soundness, certificate stage monotonicity) on the baseline engine.
	Checks bool
	// AfterOp, when set, runs after each op on each engine before states
	// are compared — the fault-injection port the mutation tests use to
	// prove the harness catches a misbehaving engine.
	AfterOp func(profile string, eng *engine.Engine, active *sheet.Sheet, op tracelang.Op)
}

func (c Config) profiles() []string {
	if len(c.Profiles) > 0 {
		return c.Profiles
	}
	names := make([]string, 0, 4)
	for n := range engine.Profiles() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Failure describes the first divergence of a differential run.
type Failure struct {
	OpIndex int // 0-based index of the op after which the divergence appeared; -1 = post-install
	Op      tracelang.Op
	Kind    string // "config", "install", "state", "error", "typecheck", "absint", "stagecert"
	Detail  string
	Ops     []tracelang.Op // the executed ops through OpIndex
}

func (f *Failure) Error() string {
	if f.OpIndex < 0 {
		return fmt.Sprintf("fuzzdiff: %s: %s", f.Kind, f.Detail)
	}
	return fmt.Sprintf("fuzzdiff: %s after op %d (%s): %s", f.Kind, f.OpIndex, f.Op, f.Detail)
}

// Script renders the executed op prefix as a trace mini-language script —
// paste it into `sheetcli trace -script` to replay the failure.
func (f *Failure) Script() string { return tracelang.Format(f.Ops) }

// Run builds the workload on one engine per profile and applies ops in
// lockstep, comparing complete workbook state after every op within each
// lookup-semantics class (optimized vs excel, sheets vs calc). It returns
// nil when every intermediate state agreed (or when the run was cut short
// by the web profile's modeled API quota — a policy difference, not a
// value difference), and the first Failure otherwise.
func Run(cfg Config, ops []tracelang.Op) *Failure {
	gen, ok := workload.ByName(cfg.Workload)
	if !ok {
		return &Failure{OpIndex: -1, Kind: "config", Detail: fmt.Sprintf("unknown workload %q", cfg.Workload)}
	}
	profs := cfg.profiles()
	execs := make(map[string]*tracelang.Exec, len(profs))
	classes := make(map[string][]string) // lookup-semantics key -> profiles
	var classKeys []string
	for _, p := range profs {
		prof, ok := engine.Profiles()[p]
		if !ok {
			return &Failure{OpIndex: -1, Kind: "config", Detail: fmt.Sprintf("unknown profile %q", p)}
		}
		k := fmt.Sprintf("early=%t/binsearch=%t", prof.Lookup.ExactEarlyExit, prof.Lookup.ApproxBinarySearch)
		if len(classes[k]) == 0 {
			classKeys = append(classKeys, k)
		}
		classes[k] = append(classes[k], p)
		eng := engine.New(prof)
		wb := gen.Build(workload.Spec{
			Rows:     cfg.Rows,
			Formulas: true,
			Seed:     cfg.Seed,
			Columnar: prof.Opt.ColumnarLayout,
		})
		if err := eng.Install(wb); err != nil {
			return &Failure{OpIndex: -1, Kind: "install", Detail: fmt.Sprintf("%s: %v", p, err)}
		}
		execs[p] = tracelang.NewExec(eng)
	}
	divergedAny := func() string {
		for _, k := range classKeys {
			if d := diverged(execs, classes[k]); d != "" {
				return d
			}
		}
		return ""
	}
	if d := divergedAny(); d != "" {
		return &Failure{OpIndex: -1, Kind: "state", Detail: "post-install: " + d}
	}
	for i, op := range ops {
		errs := make(map[string]error, len(profs))
		quota := false
		for _, p := range profs {
			x := execs[p]
			err := x.Apply(op)
			if err != nil && errors.Is(err, netsim.ErrQuotaExhausted) {
				quota = true
			}
			errs[p] = err
			if cfg.AfterOp != nil {
				cfg.AfterOp(p, x.Eng, x.S, op)
			}
		}
		if quota {
			// The web profile's API budget ran dry; every state up to the
			// previous op was verified, and the quota is modeled policy.
			return nil
		}
		fail := func(kind, detail string) *Failure {
			return &Failure{OpIndex: i, Op: op, Kind: kind, Detail: detail, Ops: append([]tracelang.Op(nil), ops[:i+1]...)}
		}
		ref := errs[profs[0]]
		for _, p := range profs[1:] {
			if (errs[p] == nil) != (ref == nil) {
				return fail("error", fmt.Sprintf("%s: %v, but %s: %v", profs[0], ref, p, errs[p]))
			}
		}
		if d := divergedAny(); d != "" {
			return fail("state", d)
		}
		if cfg.Checks {
			base := execs[Baseline]
			if base == nil {
				base = execs[profs[0]]
			}
			if kind, detail := checkAnalyses(base); kind != "" {
				return fail(kind, detail)
			}
		}
	}
	return nil
}

// diverged compares every engine's full workbook state against the first
// profile's: sheet roster and order, dimensions, formula counts, hidden
// rows, the active sheet, and every cell value with exact struct equality
// (Value.Equal is deliberately avoided — it is case-insensitive for text,
// and "identical" here means byte-identical). Returns "" on agreement.
func diverged(execs map[string]*tracelang.Exec, profs []string) string {
	ref := execs[profs[0]]
	for _, p := range profs[1:] {
		x := execs[p]
		if x.S.Name != ref.S.Name {
			return fmt.Sprintf("%s active sheet %q, %s active sheet %q", profs[0], ref.S.Name, p, x.S.Name)
		}
		rs, xs := ref.Eng.Workbook().Sheets(), x.Eng.Workbook().Sheets()
		if len(rs) != len(xs) {
			return fmt.Sprintf("%s has %d sheets, %s has %d", profs[0], len(rs), p, len(xs))
		}
		for si := range rs {
			a, b := rs[si], xs[si]
			if a.Name != b.Name {
				return fmt.Sprintf("sheet %d named %q on %s, %q on %s", si, a.Name, profs[0], b.Name, p)
			}
			if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
				return fmt.Sprintf("%s: %dx%d on %s, %dx%d on %s", a.Name, a.Rows(), a.Cols(), profs[0], b.Rows(), b.Cols(), p)
			}
			if a.FormulaCount() != b.FormulaCount() {
				return fmt.Sprintf("%s: %d formulas on %s, %d on %s", a.Name, a.FormulaCount(), profs[0], b.FormulaCount(), p)
			}
			for r := 0; r < a.Rows(); r++ {
				if a.RowHidden(r) != b.RowHidden(r) {
					return fmt.Sprintf("%s row %d: hidden=%t on %s, %t on %s", a.Name, r+1, a.RowHidden(r), profs[0], b.RowHidden(r), p)
				}
				for c := 0; c < a.Cols(); c++ {
					at := cell.Addr{Row: r, Col: c}
					if va, vb := a.Value(at), b.Value(at); va != vb {
						return fmt.Sprintf("%s!%s: %s computed %+v, %s computed %+v", a.Name, at.A1(), profs[0], va, p, vb)
					}
				}
			}
		}
	}
	return ""
}

// checkAnalyses runs the static-analysis soundness checks against the
// active sheet of one (baseline) engine. Returns ("", "") when sound.
func checkAnalyses(x *tracelang.Exec) (kind, detail string) {
	s := x.S

	// Type inference must admit every computed formula value: the abstract
	// interpreter promises an over-approximation of the evaluator.
	inf := typecheck.InferSheet(s)
	for _, a := range inf.FormulaCells() {
		if v := s.Value(a); !inf.At(a).Admits(v) {
			return "typecheck", fmt.Sprintf("%s!%s: inferred %v does not admit computed %+v", s.Name, a.A1(), inf.At(a), v)
		}
	}

	// The abstract interpreter refines the same promise with intervals,
	// error bits, and constants; every computed value must lie inside its
	// abstract value no matter what edits the fuzzer applied.
	vinf := absint.InferSheet(s)
	for _, a := range vinf.FormulaCells() {
		if v := s.Value(a); !vinf.At(a).Admits(v) {
			return "absint", fmt.Sprintf("%s!%s: inferred %s does not admit computed %+v", s.Name, a.A1(), vinf.At(a), v)
		}
	}

	// The parallel-safety certificate must stage dependencies forward.
	// Rebuild the dependency graph and the region inference from scratch —
	// independently of whatever the engine cached — and require that every
	// transitive dependent of a formula cell lives at a strictly later
	// stage whenever it lives in a different region.
	cert := x.Eng.ParallelCert(s)
	if cert == nil || !cert.OK {
		return "", ""
	}
	g := graph.New()
	s.EachFormula(func(a cell.Addr, fc sheet.Formula) bool {
		dr, dc := fc.DeltaAt(a)
		g.SetFormula(a, fc.Code.PrecedentRanges(dr, dc))
		return true
	})
	sr := regions.Infer(s)
	if len(cert.Stage) != len(sr.Regions) {
		return "stagecert", fmt.Sprintf("%s: certificate covers %d regions, independent inference found %d", s.Name, len(cert.Stage), len(sr.Regions))
	}
	var bad string
	s.EachFormula(func(a cell.Addr, fc sheet.Formula) bool {
		ra := sr.RegionFor(a)
		if ra < 0 || cert.Stage[ra] < 0 {
			return true
		}
		for _, b := range g.TransitiveDependents(a) {
			rb := sr.RegionFor(b)
			if rb < 0 || rb == ra {
				continue
			}
			if cert.Stage[rb] < 0 || cert.Stage[rb] <= cert.Stage[ra] {
				bad = fmt.Sprintf("%s!%s (region %d, stage %d) has dependent %s (region %d, stage %d)",
					s.Name, a.A1(), ra, cert.Stage[ra], b.A1(), rb, cert.Stage[rb])
				return false
			}
		}
		return true
	})
	if bad != "" {
		return "stagecert", bad
	}
	return "", ""
}
