package formula

import (
	"math"

	"repro/internal/cell"
)

func init() {
	register("ABS", 1, 1, numFn1(math.Abs))
	register("SQRT", 1, 1, func(env *Env, args []operand) cell.Value {
		return withNum(env, args[0], func(x float64) cell.Value {
			if x < 0 {
				return cell.Errorf(cell.ErrValue)
			}
			return cell.Num(math.Sqrt(x))
		})
	})
	register("EXP", 1, 1, numFn1(math.Exp))
	register("LN", 1, 1, func(env *Env, args []operand) cell.Value {
		return withNum(env, args[0], func(x float64) cell.Value {
			if x <= 0 {
				return cell.Errorf(cell.ErrValue)
			}
			return cell.Num(math.Log(x))
		})
	})
	register("LOG10", 1, 1, func(env *Env, args []operand) cell.Value {
		return withNum(env, args[0], func(x float64) cell.Value {
			if x <= 0 {
				return cell.Errorf(cell.ErrValue)
			}
			return cell.Num(math.Log10(x))
		})
	})
	register("LOG", 1, 2, fnLog)
	register("INT", 1, 1, numFn1(math.Floor))
	register("SIGN", 1, 1, numFn1(func(x float64) float64 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		}
		return 0
	}))
	register("ROUND", 1, 2, roundFn(math.Round))
	register("ROUNDUP", 1, 2, roundFn(func(x float64) float64 {
		if x < 0 {
			return math.Floor(x)
		}
		return math.Ceil(x)
	}))
	register("ROUNDDOWN", 1, 2, roundFn(math.Trunc))
	register("MOD", 2, 2, fnMod)
	register("POWER", 2, 2, fnPower)
	register("PI", 0, 0, func(*Env, []operand) cell.Value { return cell.Num(math.Pi) })
}

// withNum coerces the operand to a number and applies f; coercion failure
// yields #VALUE!, and errors pass through.
func withNum(env *Env, o operand, f func(x float64) cell.Value) cell.Value {
	v := o.scalar(env)
	if v.IsError() {
		return v
	}
	x, ok := v.AsNumber()
	if !ok {
		return cell.Errorf(cell.ErrValue)
	}
	return f(x)
}

func numFn1(f func(float64) float64) func(env *Env, args []operand) cell.Value {
	return func(env *Env, args []operand) cell.Value {
		return withNum(env, args[0], func(x float64) cell.Value { return cell.Num(f(x)) })
	}
}

func fnLog(env *Env, args []operand) cell.Value {
	return withNum(env, args[0], func(x float64) cell.Value {
		base := 10.0
		if len(args) == 2 {
			v := args[1].scalar(env)
			b, ok := v.AsNumber()
			if !ok {
				return cell.Errorf(cell.ErrValue)
			}
			base = b
		}
		if x <= 0 || base <= 0 || base == 1 {
			return cell.Errorf(cell.ErrValue)
		}
		return cell.Num(math.Log(x) / math.Log(base))
	})
}

// roundFn builds ROUND-family implementations: scale by 10^digits, apply the
// unit rounding function, scale back.
func roundFn(unit func(float64) float64) func(env *Env, args []operand) cell.Value {
	return func(env *Env, args []operand) cell.Value {
		return withNum(env, args[0], func(x float64) cell.Value {
			digits := 0.0
			if len(args) == 2 {
				v := args[1].scalar(env)
				d, ok := v.AsNumber()
				if !ok {
					return cell.Errorf(cell.ErrValue)
				}
				digits = math.Trunc(d)
			}
			scale := math.Pow(10, digits)
			return cell.Num(unit(x*scale) / scale)
		})
	}
}

func fnMod(env *Env, args []operand) cell.Value {
	return withNum(env, args[0], func(x float64) cell.Value {
		return withNum(env, args[1], func(y float64) cell.Value {
			if y == 0 {
				return cell.Errorf(cell.ErrDiv0)
			}
			// Spreadsheet MOD takes the sign of the divisor.
			m := math.Mod(x, y)
			if m != 0 && (m < 0) != (y < 0) {
				m += y
			}
			return cell.Num(m)
		})
	})
}

func fnPower(env *Env, args []operand) cell.Value {
	return withNum(env, args[0], func(x float64) cell.Value {
		return withNum(env, args[1], func(y float64) cell.Value {
			return cell.Num(math.Pow(x, y))
		})
	})
}
