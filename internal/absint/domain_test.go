package absint

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/typecheck"
)

func TestIntervalArithmeticEdges(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		got  Interval
		want Interval
	}{
		{"add", Span(1, 2).Add(Span(10, 20)), Span(11, 22)},
		{"sub", Span(1, 2).Sub(Span(10, 20)), Span(-19, -8)},
		{"mul corners", Span(-2, 3).Mul(Span(-5, 7)), Span(-15, 21)},
		{"div excludes zero", Span(1, 4).Div(Span(2, 4)), Span(0.25, 2)},
		{"neg", Span(-1, 5).Neg(), Span(-5, 1)},
		{"abs straddling zero", Span(-3, 2).Abs(), Span(0, 3)},
		{"abs negative", Span(-3, -2).Abs(), Span(2, 3)},
		{"scale percent", Span(50, 200).Scale(1.0 / 100), Span(0.5, 2)},
		{"empty absorbs add", EmptyInterval().Add(Span(1, 2)), EmptyInterval()},
		{"union with empty", EmptyInterval().Union(Span(1, 2)), Span(1, 2)},
		{"hull", Span(1, 2).Hull(-4), Span(-4, 2)},
		// Inf-Inf and 0*Inf corners collapse to Full, never to NaN bounds.
		{"nan corner mul", Span(0, 0).Mul(Full()), Full()},
		{"nan span", Span(math.NaN(), 2), Full()},
		{"inf sub inf", Span(-inf, inf).Add(Span(-inf, inf)), Full()},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestIntervalWidening(t *testing.T) {
	// A bound that moved between passes jumps to its infinity; stable
	// bounds stay exact, so the chain terminates in one widening step.
	w := Span(0, 10).WidenTo(Span(0, 11))
	if want := Span(0, math.Inf(1)); w != want {
		t.Errorf("hi widening: got %v, want %v", w, want)
	}
	w = Span(0, 10).WidenTo(Span(-1, 10))
	if want := Span(math.Inf(-1), 10); w != want {
		t.Errorf("lo widening: got %v, want %v", w, want)
	}
	if w := Span(0, 10).WidenTo(Span(0, 10)); w != Span(0, 10) {
		t.Errorf("stable interval widened: %v", w)
	}
	// Widening an already-widened interval is a fixed point.
	once := Span(0, 10).WidenTo(Span(0, 11))
	if again := once.WidenTo(once.Union(Span(0, 12))); again != once {
		t.Errorf("widening not idempotent at +Inf: %v", again)
	}
}

func TestIntervalContainsNaN(t *testing.T) {
	if Span(1, 2).Contains(math.NaN()) {
		t.Error("finite interval admits NaN")
	}
	if !Full().Contains(math.NaN()) {
		t.Error("full interval must admit NaN")
	}
}

func TestValueNormMasksBottomInterval(t *testing.T) {
	// The zero Value's interval is the point [0,0]; norm must keep it from
	// polluting joins through non-numeric (and bottom) values.
	var bottom Value
	j := bottom.Join(Exactly(cell.Num(5)))
	if j.Num != Point(5) {
		t.Errorf("bottom join injected spurious 0: %v", j.Num)
	}
	text := Value{Ab: typecheck.Abstract{Kinds: typecheck.KText}, Num: Point(3)}
	if got := text.norm().Num; !got.IsEmpty() {
		t.Errorf("non-numeric value kept interval %v", got)
	}
}

func TestValueAdmits(t *testing.T) {
	five := Exactly(cell.Num(5))
	if !five.Admits(cell.Num(5)) {
		t.Error("Exactly(5) must admit 5")
	}
	if five.Admits(cell.Num(6)) {
		t.Error("Exactly(5) admits 6")
	}
	num := Value{Ab: typecheck.Abstract{Kinds: typecheck.KNumber}, Num: Span(0, 10)}
	if !num.Admits(cell.Num(10)) || num.Admits(cell.Num(11)) {
		t.Error("interval membership broken")
	}
	if num.Admits(cell.Str("x")) {
		t.Error("kind check broken")
	}
	if !TopValue().Admits(cell.Errorf(cell.ErrDiv0)) {
		t.Error("top must admit everything")
	}
}

func TestValueJoinConstSurvival(t *testing.T) {
	a, b := Exactly(cell.Num(5)), Exactly(cell.Num(5))
	if j := a.Join(b); j.Const == nil || *j.Const != cell.Num(5) {
		t.Errorf("equal constants must survive a join: %v", j)
	}
	c := Exactly(cell.Num(6))
	j := a.Join(c)
	if j.Const != nil {
		t.Errorf("diverging constants must drop: %v", j)
	}
	if j.Num != Span(5, 6) {
		t.Errorf("join interval: got %v, want [5,6]", j.Num)
	}
}
