package spreadbench

// One benchmark per paper artifact (every table and figure of the
// evaluation), plus ablation benchmarks for each §6 optimization. These
// drive the same engine paths as the cmd/bct and cmd/oot sweeps at one
// representative size, so `go test -bench=.` exercises the full matrix
// quickly; the commands produce the complete curves.

import (
	"fmt"
	"io"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/absint"
	"repro/internal/analyze"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/formula"
	"repro/internal/interfere"
	"repro/internal/iolib"
	"repro/internal/plan"
	"repro/internal/regions"
	"repro/internal/report"
	"repro/internal/sheet"
	"repro/internal/typecheck"
	"repro/internal/workload"
)

const benchRows = 10_000

// benchEngine installs a benchRows-row dataset into a fresh engine.
func benchEngine(b *testing.B, system string, formulas bool) (*engine.Engine, *Sheet) {
	b.Helper()
	prof, ok := engine.Profiles()[system]
	if !ok {
		b.Fatalf("unknown system %q", system)
	}
	eng := engine.New(prof)
	wb := workload.Weather(workload.Spec{
		Rows: benchRows, Formulas: formulas, Columnar: prof.Opt.ColumnarLayout,
	})
	if err := eng.Install(wb); err != nil {
		b.Fatal(err)
	}
	return eng, wb.First()
}

func perSystem(b *testing.B, f func(b *testing.B, system string)) {
	for _, sys := range []string{"excel", "calc", "sheets", "optimized"} {
		b.Run(sys, func(b *testing.B) {
			b.ReportAllocs()
			f(b, sys)
		})
	}
}

// reportSim attaches the simulated latency of the last operation as a
// custom benchmark metric, so paper-comparable numbers appear beside wall
// times in the -bench output.
func reportSim(b *testing.B, sim time.Duration) {
	b.ReportMetric(float64(sim.Nanoseconds()), "sim-ns/op")
}

func BenchmarkTable1Taxonomy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.WriteTaxonomy(io.Discard)
	}
}

func BenchmarkFig2Open(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.svf")
	wb := workload.Weather(workload.Spec{Rows: benchRows, Formulas: true})
	if err := iolib.SaveWorkbook(path, wb); err != nil {
		b.Fatal(err)
	}
	perSystem(b, func(b *testing.B, sys string) {
		eng := engine.New(engine.Profiles()[sys])
		var last engine.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportSim(b, last.Sim)
	})
}

func BenchmarkFig3Sort(b *testing.B) {
	perSystem(b, func(b *testing.B, sys string) {
		eng, s := benchEngine(b, sys, true)
		var last engine.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.Sort(s, workload.ColID, i%2 == 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportSim(b, last.Sim)
	})
}

func BenchmarkFig4ConditionalFormat(b *testing.B) {
	perSystem(b, func(b *testing.B, sys string) {
		eng, s := benchEngine(b, sys, true)
		rng := cell.ColRange(workload.ColFormula0, 1, benchRows)
		style := cell.Style{Fill: cell.Green}
		var last engine.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, res, err := eng.ConditionalFormat(s, rng, cell.Num(1), style)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportSim(b, last.Sim)
	})
}

func BenchmarkFig5Filter(b *testing.B) {
	perSystem(b, func(b *testing.B, sys string) {
		eng, s := benchEngine(b, sys, true)
		var last engine.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.ClearFilter(s)
			_, res, err := eng.Filter(s, workload.ColState, cell.Str("SD"), 1)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportSim(b, last.Sim)
	})
}

func BenchmarkFig6Pivot(b *testing.B) {
	perSystem(b, func(b *testing.B, sys string) {
		eng, s := benchEngine(b, sys, true)
		var last engine.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, res, err := eng.PivotTable(s, workload.ColState, workload.ColStorm, 1)
			if err != nil {
				b.Fatal(err)
			}
			eng.Workbook().Remove(out.Name)
			last = res
		}
		reportSim(b, last.Sim)
	})
}

func BenchmarkFig7Countif(b *testing.B) {
	text := fmt.Sprintf("=COUNTIF(K2:K%d,1)", benchRows+1)
	perSystem(b, func(b *testing.B, sys string) {
		eng, s := benchEngine(b, sys, true)
		at := cell.Addr{Row: 1, Col: workload.NumCols}
		var last engine.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, res, err := eng.InsertFormula(s, at, text)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportSim(b, last.Sim)
	})
}

func BenchmarkFig8Vlookup(b *testing.B) {
	for _, approx := range []bool{true, false} {
		text := fmt.Sprintf("=VLOOKUP(%d,A2:Q%d,2,%v)", benchRows*2/5, benchRows+1, approx)
		b.Run(fmt.Sprintf("sorted=%v", approx), func(b *testing.B) {
			perSystem(b, func(b *testing.B, sys string) {
				eng, s := benchEngine(b, sys, false)
				at := cell.Addr{Row: 1, Col: workload.NumCols}
				var last engine.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, res, err := eng.InsertFormula(s, at, text)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				reportSim(b, last.Sim)
			})
		})
	}
}

func BenchmarkTable2Derivation(b *testing.B) {
	// Synthetic BCT results at realistic scale, derived repeatedly.
	results := make(map[string]*core.Result)
	for _, exp := range core.Experiments() {
		if exp.Kind != "bct" {
			continue
		}
		res := &core.Result{ID: exp.ID, Title: exp.Title}
		for _, sys := range []string{"excel", "calc", "sheets"} {
			for _, variant := range []string{"F", "V"} {
				var pts []report.Point
				for _, m := range workload.SizesUpTo(500_000) {
					pts = append(pts, report.Point{Size: m, Sim: time.Duration(m) * time.Microsecond})
				}
				res.Series = append(res.Series, report.Series{Label: sys + "/" + variant, Points: pts})
			}
		}
		results[exp.ID] = res
	}
	systems := []string{"excel", "calc", "sheets"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := core.Table2(results, systems)
		if len(rows) != 7 {
			b.Fatal("rows")
		}
	}
}

func BenchmarkFig9FindReplace(b *testing.B) {
	perSystem(b, func(b *testing.B, sys string) {
		eng, s := benchEngine(b, sys, false)
		var last engine.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			find, repl := "STORM", "TEMPEST"
			if i%2 == 1 {
				find, repl = repl, find
			}
			_, res, err := eng.FindReplace(s, find, repl)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportSim(b, last.Sim)
	})
}

func BenchmarkFig10Layout(b *testing.B) {
	for _, mode := range []string{"sequential", "random"} {
		b.Run(mode, func(b *testing.B) {
			perSystem(b, func(b *testing.B, sys string) {
				eng, s := benchEngine(b, sys, false)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "sequential" {
						eng.ReadColumn(s, workload.ColID, 1, benchRows)
						continue
					}
					rng := uint64(i)*2862933555777941757 + 3037000493
					for k := 0; k < benchRows; k++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						row := 1 + int(rng%benchRows)
						eng.CellValue(s, cell.Addr{Row: row, Col: workload.ColID})
					}
				}
			})
		})
	}
}

func BenchmarkFig11Shared(b *testing.B) {
	const m = 1000
	for _, mode := range []string{"repeated", "reusable"} {
		b.Run(mode, func(b *testing.B) {
			perSystem(b, func(b *testing.B, sys string) {
				prof := engine.Profiles()[sys]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					eng := engine.New(prof)
					wb := workload.Weather(workload.Spec{Rows: m, Columnar: prof.Opt.ColumnarLayout})
					if err := eng.Install(wb); err != nil {
						b.Fatal(err)
					}
					s := wb.First()
					b.StartTimer()
					for k := 1; k <= m; k++ {
						var text string
						var at cell.Addr
						if mode == "repeated" {
							text = fmt.Sprintf("=SUM(A2:A%d)", k+1)
							at = cell.Addr{Row: k, Col: workload.NumCols}
						} else {
							at = cell.Addr{Row: k, Col: workload.NumCols + 1}
							if k == 1 {
								text = "=A2"
							} else {
								text = fmt.Sprintf("=A%d+%s%d", k+1, cell.ColName(workload.NumCols+1), k)
							}
						}
						if _, _, err := eng.InsertFormula(s, at, text); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}

func BenchmarkFig12Redundant(b *testing.B) {
	text := fmt.Sprintf(`=COUNTIF(J2:J%d,"1")`, benchRows+1)
	for _, instances := range []int{1, 5} {
		b.Run(fmt.Sprintf("instances=%d", instances), func(b *testing.B) {
			perSystem(b, func(b *testing.B, sys string) {
				eng, s := benchEngine(b, sys, false)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for k := 0; k < instances; k++ {
						at := cell.Addr{Row: 1 + k, Col: workload.NumCols}
						if _, _, err := eng.InsertFormula(s, at, text); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}

func BenchmarkFig13Incremental(b *testing.B) {
	perSystem(b, func(b *testing.B, sys string) {
		eng, s := benchEngine(b, sys, false)
		text := fmt.Sprintf(`=COUNTIF(J2:J%d,"1")`, benchRows+1)
		if _, _, err := eng.InsertFormula(s, cell.Addr{Row: 1, Col: workload.NumCols}, text); err != nil {
			b.Fatal(err)
		}
		j2 := cell.Addr{Row: 1, Col: workload.ColStorm}
		var last engine.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.SetCell(s, j2, cell.Num(float64(i%2)))
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportSim(b, last.Sim)
	})
}

func BenchmarkFig14MultiFormula(b *testing.B) {
	const instances = 100
	perSystem(b, func(b *testing.B, sys string) {
		eng, s := benchEngine(b, sys, false)
		text := fmt.Sprintf(`=COUNTIF(J2:J%d,"1")`, benchRows+1)
		for k := 0; k < instances; k++ {
			if _, _, err := eng.InsertFormula(s, cell.Addr{Row: 1 + k, Col: workload.NumCols}, text); err != nil {
				b.Fatal(err)
			}
		}
		j2 := cell.Addr{Row: 1, Col: workload.ColStorm}
		var last engine.Result
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eng.SetCell(s, j2, cell.Num(float64(i%2)))
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportSim(b, last.Sim)
	})
}

// Ablation benchmarks: each §6 optimization toggled off against the full
// optimized profile, exercising the design choices DESIGN.md calls out.

func ablatedProfile(disable func(*engine.Optimizations)) engine.Profile {
	p := engine.OptimizedProfile()
	disable(&p.Opt)
	return p
}

func benchAblation(b *testing.B, p engine.Profile, formulas bool, run func(eng *engine.Engine, s *Sheet, i int) error) {
	eng := engine.New(p)
	wb := workload.Weather(workload.Spec{Rows: benchRows, Formulas: formulas, Columnar: p.Opt.ColumnarLayout})
	if err := eng.Install(wb); err != nil {
		b.Fatal(err)
	}
	s := wb.First()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(eng, s, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHashIndexCountif(b *testing.B) {
	text := fmt.Sprintf(`=COUNTIF(B2:B%d,"SD")`, benchRows+1)
	run := func(eng *engine.Engine, s *Sheet, i int) error {
		_, _, err := eng.InsertFormula(s, cell.Addr{Row: 1, Col: workload.NumCols}, text)
		return err
	}
	b.Run("on", func(b *testing.B) {
		benchAblation(b, engine.OptimizedProfile(), false, run)
	})
	b.Run("off", func(b *testing.B) {
		benchAblation(b, ablatedProfile(func(o *engine.Optimizations) {
			o.HashIndex = false
			o.RedundantElimination = false // isolate the index effect
		}), false, run)
	})
}

func BenchmarkAblationIncrementalUpdate(b *testing.B) {
	mk := func(p engine.Profile) func(b *testing.B) {
		return func(b *testing.B) {
			eng := engine.New(p)
			wb := workload.Weather(workload.Spec{Rows: benchRows, Columnar: p.Opt.ColumnarLayout})
			if err := eng.Install(wb); err != nil {
				b.Fatal(err)
			}
			s := wb.First()
			text := fmt.Sprintf(`=COUNTIF(J2:J%d,"1")`, benchRows+1)
			if _, _, err := eng.InsertFormula(s, cell.Addr{Row: 1, Col: workload.NumCols}, text); err != nil {
				b.Fatal(err)
			}
			j2 := cell.Addr{Row: 1, Col: workload.ColStorm}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.SetCell(s, j2, cell.Num(float64(i%2))); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("on", mk(engine.OptimizedProfile()))
	b.Run("off", mk(ablatedProfile(func(o *engine.Optimizations) { o.IncrementalAggregates = false })))
}

func BenchmarkAblationInvertedIndexFind(b *testing.B) {
	run := func(eng *engine.Engine, s *Sheet, i int) error {
		_, _, err := eng.FindReplace(s, "QQABSENT", "X")
		return err
	}
	b.Run("on", func(b *testing.B) {
		benchAblation(b, engine.OptimizedProfile(), false, run)
	})
	b.Run("off", func(b *testing.B) {
		benchAblation(b, ablatedProfile(func(o *engine.Optimizations) { o.InvertedIndex = false }), false, run)
	})
}

func BenchmarkAblationSharedComputation(b *testing.B) {
	const m = 500
	mk := func(p engine.Profile) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := engine.New(p)
				wb := workload.Weather(workload.Spec{Rows: m, Columnar: p.Opt.ColumnarLayout})
				if err := eng.Install(wb); err != nil {
					b.Fatal(err)
				}
				s := wb.First()
				b.StartTimer()
				for k := 1; k <= m; k++ {
					text := fmt.Sprintf("=SUM(A2:A%d)", k+1)
					at := cell.Addr{Row: k, Col: workload.NumCols}
					if _, _, err := eng.InsertFormula(s, at, text); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	b.Run("on", mk(engine.OptimizedProfile()))
	b.Run("off", mk(ablatedProfile(func(o *engine.Optimizations) {
		o.SharedComputation = false
		o.RedundantElimination = false
	})))
}

func BenchmarkAblationSortRecalcAnalysis(b *testing.B) {
	mk := func(p engine.Profile) func(b *testing.B) {
		return func(b *testing.B) {
			eng := engine.New(p)
			wb := workload.Weather(workload.Spec{Rows: benchRows, Formulas: true, Columnar: p.Opt.ColumnarLayout})
			if err := eng.Install(wb); err != nil {
				b.Fatal(err)
			}
			s := wb.First()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Sort(s, workload.ColID, i%2 == 0, 1); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("on", mk(engine.OptimizedProfile()))
	b.Run("off", mk(ablatedProfile(func(o *engine.Optimizations) { o.SortRecalcAnalysis = false })))
}

// Substrate micro-benchmarks: the engine hot paths.

func BenchmarkFormulaCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := formula.Compile(`=COUNTIF(K2:K10001,1)+SUM(A1:A100)*2`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridScan(b *testing.B) {
	wb := workload.Weather(workload.Spec{Rows: benchRows})
	s := wb.First()
	b.ReportAllocs()
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		for r := 1; r <= benchRows; r++ {
			v := s.Value(cell.Addr{Row: r, Col: workload.ColStorm})
			sum += v.Num
		}
	}
	_ = sum
}

// BenchmarkAnalyzeWorkbook runs the static analyzer (internal/analyze)
// over the 50k-row Formula-value workload — the paper's real-world
// dataset size. The analyzer never evaluates, so its cost should scale
// with the formula count (seven COUNTIFs per row), not with recalc cost;
// b.N iterations over a fixed workbook make regressions in the per-formula
// constant visible.
func BenchmarkAnalyzeWorkbook(b *testing.B) {
	wb := workload.Weather(workload.Spec{Rows: 50_000, Formulas: true, Analysis: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := analyze.Workbook(wb, analyze.Options{})
		if rep.Formulas == 0 || rep.EstRecalcOps == 0 {
			b.Fatal("empty analysis report")
		}
	}
}

// BenchmarkTypecheckWorkbook measures the static type checker's full
// pipeline — dependency graph, topological fixpoint over the kind lattice,
// column certificates, report assembly — on the 50k-row weather workbook.
// Like the analyzer, it never evaluates a formula, so cost should track
// the formula count; the optimized engine pays exactly this once per
// Install when TypedColumns is on.
func BenchmarkTypecheckWorkbook(b *testing.B) {
	wb := workload.Weather(workload.Spec{Rows: 50_000, Formulas: true, Analysis: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := typecheck.Workbook(wb, typecheck.Options{})
		if rep.Formulas == 0 || rep.ErrorCells == 0 {
			b.Fatal("empty typecheck report")
		}
	}
}

// BenchmarkAnalyzeScaling pins the O(formulas) claim: doubling the rows
// should roughly double the wall time (compare ns/op across sub-runs).
func BenchmarkAnalyzeScaling(b *testing.B) {
	for _, rows := range []int{10_000, 20_000, 40_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			wb := workload.Weather(workload.Spec{Rows: rows, Formulas: true, Analysis: true})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep := analyze.Workbook(wb, analyze.Options{}); rep.Formulas == 0 {
					b.Fatal("empty analysis report")
				}
			}
		})
	}
}

// BenchmarkRegionInference measures fill-region inference (internal/regions)
// over the 50k-row Formula-value workload: 350k formula cells canonicalized
// to R1C1 and coalesced into seven column regions. The srcKey fast path
// makes this O(formulas) with a small constant — the whole point of running
// it on every optimized-engine Install.
func BenchmarkRegionInference(b *testing.B) {
	wb := workload.Weather(workload.Spec{Rows: 50_000, Formulas: true})
	s := wb.First()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := regions.Infer(s)
		if len(sr.Regions) != 7 {
			b.Fatalf("regions = %d, want 7", len(sr.Regions))
		}
	}
}

// BenchmarkRegionGraphBuild measures building and sequencing the compressed
// region-level dependency graph on top of a fixed inference result. With
// seven regions the graph work is trivially small; what this pins is that
// Build stays proportional to regions x references-per-class, not to the
// 350k formula cells a per-cell graph would walk.
func BenchmarkRegionGraphBuild(b *testing.B) {
	wb := workload.Weather(workload.Spec{Rows: 50_000, Formulas: true})
	sr := regions.Infer(wb.First())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := regions.Build(sr)
		if !g.OK() {
			b.Fatal("formula-only weather sheet must sequence")
		}
	}
}

// BenchmarkInterferenceAnalysis measures the parallel-safety certification
// (internal/interfere) on a fixed inference result for the 50k-row
// Formula-value workload: per-class read footprints, the region-pair
// interference relation, and the staged leveling. Like Build, the cost must
// scale with regions and classes, never with the 350k formula cells — the
// certificate is re-derived on every formula-set edit, so this is an
// editing-latency path, not a one-time install cost.
func BenchmarkInterferenceAnalysis(b *testing.B) {
	wb := workload.Weather(workload.Spec{Rows: 50_000, Formulas: true})
	sr := regions.Infer(wb.First())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert := interfere.Analyze(sr)
		if !cert.OK || cert.StageCount() != 1 {
			b.Fatalf("cert: OK=%v stages=%d, want one certified stage", cert.OK, cert.StageCount())
		}
	}
}

// BenchmarkAbsintWorkbook measures the abstract interpreter's full
// pipeline — topological fixpoint over the interval/kind/error lattice,
// constant folding through the concrete mirror, certificate distillation —
// on the 50k-row weather workbook. Like typecheck, it never evaluates a
// formula; the optimized engine pays exactly this once per Install when
// ValueCerts is on.
func BenchmarkAbsintWorkbook(b *testing.B) {
	wb := workload.Weather(workload.Spec{Rows: 50_000, Formulas: true, Analysis: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range wb.Sheets() {
			cert := absint.InferSheet(s).Certify()
			if cert.Formulas == 0 || len(cert.Columns) == 0 {
				b.Fatal("empty certificate set")
			}
		}
	}
}

// certifiedLookupWorkbook builds the certified-lookup benchmark sheet: an
// ascending numeric key column of n rows plus a block of exact MATCHes
// over it, half of them guaranteed misses (an exact miss defeats the
// early-exit scan, so the naive cost is the full column).
func certifiedLookupWorkbook(b *testing.B, rows, lookups int) *sheet.Workbook {
	b.Helper()
	s := sheet.New("lookup", rows+lookups, 4)
	for r := 0; r < rows; r++ {
		s.SetValue(cell.Addr{Row: r, Col: 0}, cell.Num(float64(r*2)))
	}
	for i := 0; i < lookups; i++ {
		key := (i * 61 * 2) % (rows * 2)
		if i%2 == 1 {
			key++ // odd: between stored even keys, a guaranteed miss
		}
		text := fmt.Sprintf("=MATCH(%d,A1:A%d,0)", key, rows)
		c, err := formula.Compile(text)
		if err != nil {
			b.Fatal(err)
		}
		s.SetFormula(cell.Addr{Row: rows + i, Col: 2}, c)
	}
	wb := sheet.NewWorkbook()
	if err := wb.Add(s); err != nil {
		b.Fatal(err)
	}
	return wb
}

// BenchmarkCertifiedLookupMatch pins the tentpole speedup of the value
// analysis: recalculating exact MATCHes over an ascending key column. The
// excel profile scans linearly (early exit on hits, full column on
// misses); the optimized profile holds an ascending certificate
// (internal/absint) and binary-searches. The gap must grow with the
// column: ~n/log2(n) per miss.
func BenchmarkCertifiedLookupMatch(b *testing.B) {
	const lookups = 32
	for _, rows := range []int{50_000, 200_000, 500_000} {
		for _, sys := range []string{"excel", "optimized"} {
			b.Run(fmt.Sprintf("rows=%d/%s", rows, sys), func(b *testing.B) {
				eng := engine.New(engine.Profiles()[sys])
				wb := certifiedLookupWorkbook(b, rows, lookups)
				if err := eng.Install(wb); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Recalculate(wb.First()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPlanSelection measures the cost-based planner itself: statistics
// collection, candidate pricing, and strategy selection over each workload
// family (internal/plan). This is the latency the planned profile pays on
// the first operation after a plan-invalidating change, so it must stay
// far below the recalculation work it optimizes.
func BenchmarkPlanSelection(b *testing.B) {
	for _, gen := range workload.Generators() {
		b.Run(gen.Name, func(b *testing.B) {
			wb := gen.Build(workload.Spec{Rows: benchRows, Formulas: true})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := plan.Build(wb, plan.Options{})
				if len(p.Sheets) == 0 {
					b.Fatal("empty plan")
				}
			}
		})
	}
}

// BenchmarkPlannerVsFixed is the plan-quality series: steady-state
// recalculation under the planned profile against both fixed strategies
// (always-index optimized, scan-only). The planned series must track the
// better fixed strategy per workload; the EXPERIMENTS.md plan-quality
// table is the full matrix, this benchmark is its perf-trajectory record.
func BenchmarkPlannerVsFixed(b *testing.B) {
	scan := engine.OptimizedProfile()
	scan.Name = "scan-only"
	scan.Opt = engine.Optimizations{}
	profiles := []engine.Profile{engine.PlannedProfile(), engine.OptimizedProfile(), scan}
	for _, gen := range workload.Generators() {
		for _, prof := range profiles {
			b.Run(gen.Name+"/"+prof.Name, func(b *testing.B) {
				wb := gen.Build(workload.Spec{Rows: benchRows, Formulas: true})
				eng := engine.New(prof)
				if err := eng.Install(wb); err != nil {
					b.Fatal(err)
				}
				main := wb.First()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Recalculate(main); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
