// Package engine implements the spreadsheet system under test: a complete,
// profile-parameterized engine providing every operation the paper
// benchmarks (open, sort, filter, conditional formatting, pivot tables,
// find-and-replace, copy-paste, formula insertion and evaluation, cell
// edits with dependency-driven recalculation), plus the optimization layer
// of §6 (indexes, incremental aggregates, shared and deduplicated
// computation, recalculation-necessity analysis, columnar access).
//
// A Profile encodes one system's externally observable policies — which
// operations trigger formula recalculation, which lookup algorithm runs,
// whether loading is viewport-lazy, how work units map to simulated time —
// per the evidence in §4–§5 of the paper. The work the engine performs is
// always real; only the clock conversion is calibrated.
package engine

import (
	"time"

	"repro/internal/costmodel"
	"repro/internal/formula"
	"repro/internal/netsim"
)

// OpKind identifies one benchmarked operation class for fixed-cost and
// multiplier lookup.
type OpKind int

// Operation kinds, following the taxonomy of Table 1.
const (
	OpOpen OpKind = iota
	OpSort
	OpFilter
	OpCondFormat
	OpPivot
	OpFindReplace
	OpCopyPaste
	OpAggregate   // inserting/evaluating an aggregate formula (COUNTIF, SUM, ...)
	OpLookup      // inserting/evaluating a lookup formula (VLOOKUP, MATCH, ...)
	OpSetCell     // a single cell edit, plus triggered recalculation
	OpRead        // scripting-API read of one cell (the §5.2 layout probe)
	OpBatchInsert // bulk formula fill (one script call, native evaluation)
	OpRowEdit     // structural row insertion/deletion with reference rewriting
	numOpKinds
)

var opKindNames = [numOpKinds]string{
	"open", "sort", "filter", "condformat", "pivot", "findreplace",
	"copypaste", "aggregate", "lookup", "setcell", "read", "batchinsert",
	"rowedit",
}

// String returns the operation kind's name.
func (k OpKind) String() string {
	if k < 0 || k >= numOpKinds {
		return "unknown"
	}
	return opKindNames[k]
}

// RecalcPolicy captures when a system recomputes embedded formulae — the
// interaction effects of §1 and the findings of §4. Values for the three
// systems come from the paper's observations and the Excel recalculation
// documentation it cites [6].
type RecalcPolicy struct {
	// OnOpen: determine the calculation sequence and recompute every
	// formula when a workbook is opened. All three systems do this (§4.1).
	OnOpen bool
	// OnSort: recompute all formulae after a sort, necessary or not
	// (§4.2.1: "sorting triggers formula recomputation that is often
	// unnecessary"). All three systems.
	OnSort bool
	// OnFilter: recompute after a filter. Observed only for Excel (§4.3.1:
	// "filtering likely triggers unnecessary formula recalculation in
	// Excel ... the other systems avoid this recomputation").
	OnFilter bool
	// OnCondFormat: recompute the formulae in the formatted range.
	// Observed for Calc and Google Sheets, not Excel (§4.2.2).
	OnCondFormat bool
	// OnNewSheet: recompute when a worksheet is inserted (pivot-table
	// output). Observed for Excel and Google Sheets, not Calc (§4.3.2).
	OnNewSheet bool
	// ReevalOnRead: re-evaluate a formula cell whenever another formula
	// references it, instead of trusting the cached value. Observed for
	// Calc and Google Sheets (§4.3.3: "issuing a COUNTIF formula over a
	// cell ... the value of which is a result of another formula,
	// triggers a recalculation at that cell").
	ReevalOnRead bool
	// StaleCheckOnRead: pay a per-cell staleness check when a scan crosses
	// a formula cell, without re-evaluating. Models Excel's cheaper
	// Formula-value overhead in §4.3.3.
	StaleCheckOnRead bool
}

// Optimizations lists the §6 database-style techniques. All are false for
// the three benchmarked systems — establishing that is the OOT benchmark's
// finding — and true (individually toggleable for ablations) in the
// optimized profile.
type Optimizations struct {
	// ColumnarLayout stores sheets column-major and serves sequential
	// column scans from contiguous memory with a bulk API (§5.2, §6).
	ColumnarLayout bool
	// HashIndex maintains per-column hash indexes consulted by exact-match
	// lookups (§5.1, §6 "Indexing and data layout").
	HashIndex bool
	// InvertedIndex maintains a token index consulted by find-and-replace
	// (§5.1.2).
	InvertedIndex bool
	// IncrementalAggregates maintains materialized aggregate results and
	// applies single-cell deltas instead of recomputing (§5.5, §6).
	IncrementalAggregates bool
	// SharedComputation answers overlapping range aggregates from shared
	// prefix sums (§5.3, §6 "Shared computation").
	SharedComputation bool
	// RedundantElimination detects formulae identical to an already
	// computed one by fingerprint and reuses the result (§5.4).
	RedundantElimination bool
	// SortRecalcAnalysis skips recomputation of row-local relative-
	// reference formulae after a sort (§6 "Detecting what needs
	// recomputation").
	SortRecalcAnalysis bool
	// LazyOpen loads only the visible window eagerly, resolving the rest
	// in the background (§6, generalizing Google Sheets' behavior).
	LazyOpen bool
	// TypedColumns consumes the static type checker's column certificates
	// (internal/typecheck): columns proven all-numeric fill typed columnar
	// storage without per-cell coercion checks (§6 "Indexing and data
	// layout" meets the analysis pass).
	TypedColumns bool
	// RegionGraph sequences recalculation over inferred uniform fill
	// regions (internal/regions) instead of per-cell graph nodes — the
	// shared-formula compression real engines apply to filled columns, run
	// as a static pre-flight. Falls back to the per-cell graph whenever
	// the sheet's regions cannot be ordered.
	RegionGraph bool
	// ValueCerts consumes the abstract interpreter's value certificates
	// (internal/absint): certified ascending lookup columns switch
	// VLOOKUP/MATCH from linear scan to binary search, certified
	// error-free numeric columns extend the typed columnar fills, and
	// certified-constant formula cells are skipped by calc passes under a
	// per-use value guard (internal/engine/valuecert.go).
	ValueCerts bool
	// CostPlanner replaces the hard-wired strategy choices above with a
	// cost-based plan (internal/plan): per-column statistics and priced
	// candidates decide per site whether lookups probe an index, binary
	// search, or scan; whether COUNTIF and shared aggregates use their
	// index services; which prefix indexes build eagerly; whether
	// recalculation sequences by region or per cell; and whether edits
	// maintain aggregates by deltas. Plans are advisory for cost only —
	// every fast path keeps its own soundness guard
	// (internal/engine/planner.go).
	CostPlanner bool
}

// Any reports whether any optimization is enabled.
func (o Optimizations) Any() bool { return o != Optimizations{} }

// Profile is a complete system model.
type Profile struct {
	// Name identifies the system ("excel", "calc", "sheets", "optimized").
	Name string
	// Lookup selects the lookup algorithms (§4.3.4).
	Lookup formula.LookupPolicy
	// Recalc is the recalculation policy.
	Recalc RecalcPolicy
	// Opt is the optimization set (zero for the real systems).
	Opt Optimizations

	// Web routes operations through the simulated network, models
	// viewport-lazy loading and formatting, and enforces quotas.
	Web bool
	// LazyViewport makes open and conditional formatting touch only the
	// visible window for value-only data (Google Sheets, §4.1, §4.2.2).
	LazyViewport bool
	// WindowRows is the number of rows in the visible window.
	WindowRows int
	// Net configures the simulated network (Web systems only).
	Net netsim.Config

	// Coeff converts metered work units to simulated nanoseconds.
	Coeff costmodel.Coefficients
	// FixedCost is a per-operation fixed simulated overhead (application
	// dispatch, rendering setup, script startup).
	FixedCost [numOpKinds]time.Duration
	// Multiplier scales the metered (variable) simulated cost of one
	// operation kind; 0 means 1. Used where a system's implementation of
	// one specific operation is disproportionately slow (e.g. Calc's
	// interpreted VLOOKUP, §4.3.4), with the justification documented in
	// calibration.go.
	Multiplier [numOpKinds]float64
}

// multiplier returns the effective variable-cost multiplier for an op.
func (p *Profile) multiplier(k OpKind) float64 {
	m := p.Multiplier[k]
	if m == 0 {
		return 1
	}
	return m
}

// OpTime converts one operation's metered work delta into simulated time.
func (p *Profile) OpTime(k OpKind, work *costmodel.Meter) time.Duration {
	variable := p.Coeff.Time(work)
	return p.FixedCost[k] + time.Duration(float64(variable)*p.multiplier(k))
}
