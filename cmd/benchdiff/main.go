// Command benchdiff is the noise-aware bench regression gate: it diffs a
// candidate BENCH_engine.json against a committed baseline with
// internal/perfbase and prints a ranked verdict table.
//
//	benchdiff -baseline BENCH_baseline.json -candidate BENCH_engine.json
//
// Exit status: 0 when no benchmark regressed, 1 on regressions, 2 on
// usage or I/O errors. Timing regressions are judged on min-of-N ns/op
// against a relative threshold above a noise floor; allocation counts are
// matched exactly up to -allocs-slack (they are deterministic up to
// map-growth timing, so any increase beyond a hair is real).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/perfbase"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline bench file")
	candidate := fs.String("candidate", "BENCH_engine.json", "candidate bench file to judge")
	threshold := fs.Float64("threshold", 0.20, "relative ns/op increase that fails the gate")
	minNs := fs.Float64("min-ns", 100, "noise floor: ns/op below which timing changes are ignored")
	allocsExact := fs.Bool("allocs-exact", true, "fail on allocs/op increases")
	allocsSlack := fs.Float64("allocs-slack", 0, "relative allocs/op increase tolerated under -allocs-exact (0.01 = 1%)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "benchdiff: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	base, err := loadBench(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: baseline: %v\n", err)
		return 2
	}
	cand, err := loadBench(*candidate)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: candidate: %v\n", err)
		return 2
	}
	opt := perfbase.Options{NsThreshold: *threshold, MinNs: *minNs,
		AllocsExact: *allocsExact, AllocsSlack: *allocsSlack}
	diff := perfbase.Compare(base, cand, opt)
	if err := diff.WriteTable(stdout, opt); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if diff.HasRegressions() {
		return 1
	}
	return 0
}

func loadBench(path string) (*obs.BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return obs.ParseBenchFile(data)
}
