package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/iolib"
	"repro/internal/obs"
	"repro/internal/tracelang"
	"repro/internal/workload"
)

// defaultTraceScript exercises every traced user-facing operation class on
// the weather fixture: sort, filter, plain write, formula insert,
// find-replace, and a forced full recalculation.
const defaultTraceScript = "sort B; filter B TX; set J6 3; formula R2 =SUM(J2:J101); find TX XT; recalc"

// runTrace implements the `sheetcli trace` subcommand: it runs a scripted
// operation sequence against one system profile with the observability layer
// on, then renders the span tree and the 500 ms interactivity SLO verdicts.
// Verdicts are judged on the simulated clock each op span carries
// (obs.SimAttr), so the output is deterministic for a fixed workload; wall
// durations appear only with -wall. The script language is
// internal/tracelang; -workload picks any registered dataset generator.
//
// Usage: sheetcli trace [-system excel] [-workload w] [-rows n] [-seed n]
//
//	[-script ops] [-json] [-wall] [-max n] [-out trace.json] [file.svf]
func runTrace(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	fs.SetOutput(errOut)
	system := fs.String("system", "excel", "system profile to trace")
	wname := fs.String("workload", "weather", "generated dataset (ignored with a file argument): one of "+workloadNames())
	rows := fs.Int("rows", 1000, "rows of the generated dataset (ignored with a file argument)")
	seed := fs.Uint64("seed", 0, "generator seed; 0 means the default")
	script := fs.String("script", defaultTraceScript, "semicolon-separated operations to trace")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	wall := fs.Bool("wall", false, "include wall-clock durations in the span tree (non-deterministic)")
	maxSpans := fs.Int("max", 200, "max spans rendered in the tree; 0 removes the cap")
	chromeOut := fs.String("out", "", "also write the trace as Chrome trace-event JSON to this path")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: sheetcli trace [-system p] [-workload w] [-rows n] [-seed n] [-script ops] [-json] [-wall] [-max n] [-out f] [file.svf]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	prof, ok := engine.Profiles()[*system]
	if !ok {
		fmt.Fprintf(errOut, "sheetcli: unknown system %q\n", *system)
		return 2
	}

	eng := engine.New(prof)
	if fs.NArg() > 0 {
		res, err := iolib.LoadWorkbook(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(errOut, "sheetcli: %v\n", err)
			return 1
		}
		if err := eng.Install(res.Workbook); err != nil {
			fmt.Fprintf(errOut, "sheetcli: %v\n", err)
			return 1
		}
	} else {
		gen, ok := workload.ByName(*wname)
		if !ok {
			fmt.Fprintf(errOut, "sheetcli: unknown workload %q (have %s)\n", *wname, workloadNames())
			return 2
		}
		wb := gen.Build(workload.Spec{Rows: *rows, Formulas: true, Seed: *seed})
		if err := eng.Install(wb); err != nil {
			fmt.Fprintf(errOut, "sheetcli: %v\n", err)
			return 1
		}
	}

	// Trace only the scripted operations, not the fixture install.
	obs.Reset()
	obs.SetEnabled(true)
	scriptErr := tracelang.Run(eng, *script)
	obs.SetEnabled(false)
	tr := obs.Take()
	if scriptErr != nil {
		fmt.Fprintf(errOut, "sheetcli: %v\n", scriptErr)
		return 1
	}

	if *chromeOut != "" {
		if err := writeChromeFile(*chromeOut, tr); err != nil {
			fmt.Fprintf(errOut, "sheetcli: %v\n", err)
			return 1
		}
		fmt.Fprintf(errOut, "wrote %s\n", *chromeOut)
	}

	rep := obs.CheckTrace(tr, obs.DefaultSLOBound)
	var err error
	if *jsonOut {
		err = writeTraceJSON(out, *system, tr, rep)
	} else {
		err = writeTraceText(out, tr, rep, obs.TreeOptions{Durations: *wall, MaxSpans: *maxSpans})
	}
	if err != nil {
		fmt.Fprintf(errOut, "sheetcli: %v\n", err)
		return 1
	}
	return 0
}

// writeChromeFile saves the trace as Chrome trace-event JSON, surfacing
// write and close errors alike.
func writeChromeFile(path string, tr *obs.Trace) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriter(f)
	if err := tr.WriteChromeJSON(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// workloadNames lists the registered dataset generators for usage text.
func workloadNames() string { return strings.Join(workload.Names(), "|") }

// writeTraceText renders the span tree followed by the SLO verdict section —
// the shared renderer behind the trace subcommand and the REPL's trace dump.
func writeTraceText(w io.Writer, tr *obs.Trace, rep obs.SLOReport, opts obs.TreeOptions) error {
	if tr.Spans == 0 {
		if _, err := fmt.Fprintln(w, "no spans recorded"); err != nil {
			return err
		}
	} else if err := tr.WriteTree(w, opts); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return rep.WriteText(w)
}

// traceSpanJSON is one span of the JSON report: names and attributes only —
// the deterministic skeleton — with wall timings deliberately omitted.
type traceSpanJSON struct {
	Name     string           `json:"name"`
	Attrs    map[string]any   `json:"attrs,omitempty"`
	Children []*traceSpanJSON `json:"children,omitempty"`
}

func spanToJSON(sp *obs.TraceSpan) *traceSpanJSON {
	out := &traceSpanJSON{Name: sp.Name}
	if len(sp.Attrs) > 0 {
		out.Attrs = make(map[string]any, len(sp.Attrs))
		for _, a := range sp.Attrs {
			if a.IsStr {
				out.Attrs[a.Key] = a.Str
			} else {
				out.Attrs[a.Key] = a.Int
			}
		}
	}
	for _, c := range sp.Children {
		out.Children = append(out.Children, spanToJSON(c))
	}
	return out
}

func writeTraceJSON(w io.Writer, system string, tr *obs.Trace, rep obs.SLOReport) error {
	doc := struct {
		System string           `json:"system"`
		Spans  int              `json:"spans"`
		SLO    obs.SLOReport    `json:"slo"`
		Roots  []*traceSpanJSON `json:"roots"`
	}{System: system, Spans: tr.Spans, SLO: rep}
	for _, r := range tr.Roots {
		doc.Roots = append(doc.Roots, spanToJSON(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
