package sheet

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func TestGridBasics(t *testing.T) {
	for _, g := range []Grid{NewRowGrid(3, 2), NewColGrid(3, 2)} {
		if g.Rows() != 3 || g.Cols() != 2 {
			t.Errorf("%s: dims %dx%d", g.Layout(), g.Rows(), g.Cols())
		}
		a := cell.Addr{Row: 1, Col: 1}
		g.SetValue(a, cell.Num(7))
		if v := g.Value(a); v.Num != 7 {
			t.Errorf("%s: Value = %+v", g.Layout(), v)
		}
		// Out-of-bounds reads are empty, not panics.
		if v := g.Value(cell.Addr{Row: 99, Col: 99}); !v.IsEmpty() {
			t.Errorf("%s: OOB read = %+v", g.Layout(), v)
		}
		if v := g.Value(cell.Addr{Row: -1, Col: 0}); !v.IsEmpty() {
			t.Errorf("%s: negative read = %+v", g.Layout(), v)
		}
		// Writes grow the grid.
		g.SetValue(cell.Addr{Row: 5, Col: 4}, cell.Str("x"))
		if g.Rows() < 6 || g.Cols() < 5 {
			t.Errorf("%s: grow to %dx%d", g.Layout(), g.Rows(), g.Cols())
		}
	}
}

// TestGridLayoutEquivalence is the central layout property: under any
// operation sequence, RowGrid and ColGrid are observationally identical —
// layout changes cost, never behavior (§5.2).
func TestGridLayoutEquivalence(t *testing.T) {
	type op struct {
		Kind uint8
		Row  uint8
		Col  uint8
		Val  float64
	}
	f := func(ops []op, permSeed uint16) bool {
		rg := NewRowGrid(8, 8)
		cg := NewColGrid(8, 8)
		for _, o := range ops {
			a := cell.Addr{Row: int(o.Row % 12), Col: int(o.Col % 12)}
			switch o.Kind % 3 {
			case 0:
				rg.SetValue(a, cell.Num(o.Val))
				cg.SetValue(a, cell.Num(o.Val))
			case 1:
				rg.SetValue(a, cell.Str("s"))
				cg.SetValue(a, cell.Str("s"))
			case 2:
				if rg.Value(a) != cg.Value(a) {
					return false
				}
			}
		}
		// Same permutation applied to both (only when dims agree and all
		// rows materialized identically).
		rows := rg.Rows()
		if cg.Rows() < rows {
			rows = cg.Rows()
		}
		perm := make([]int, rows)
		for i := range perm {
			perm[i] = i
		}
		s := int(permSeed)
		for i := rows - 1; i > 0; i-- {
			s = (s*31 + 7) % (i + 1)
			j := s
			if j < 0 {
				j = -j
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
		// Compare a sample of cells after permutation on fresh copies.
		rg2 := NewRowGrid(rows, 12)
		cg2 := NewColGrid(rows, 12)
		for r := 0; r < rows; r++ {
			for c := 0; c < 12; c++ {
				a := cell.Addr{Row: r, Col: c}
				rg2.SetValue(a, rg.Value(a))
				cg2.SetValue(a, rg.Value(a))
			}
		}
		rg2.ApplyRowPerm(perm)
		cg2.ApplyRowPerm(perm)
		for r := 0; r < rows; r++ {
			for c := 0; c < 12; c++ {
				a := cell.Addr{Row: r, Col: c}
				if rg2.Value(a) != cg2.Value(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestApplyRowPermMoves(t *testing.T) {
	for _, g := range []Grid{NewRowGrid(3, 1), NewColGrid(3, 1)} {
		for r := 0; r < 3; r++ {
			g.SetValue(cell.Addr{Row: r}, cell.Num(float64(r)))
		}
		g.ApplyRowPerm([]int{2, 0, 1})
		want := []float64{2, 0, 1}
		for r := 0; r < 3; r++ {
			if v := g.Value(cell.Addr{Row: r}); v.Num != want[r] {
				t.Errorf("%s: row %d = %v, want %v", g.Layout(), r, v.Num, want[r])
			}
		}
	}
}

func TestColGridColumn(t *testing.T) {
	g := NewColGrid(4, 2)
	g.SetValue(cell.Addr{Row: 2, Col: 1}, cell.Num(9))
	col := g.Column(1)
	if len(col) != 4 || col[2].Num != 9 {
		t.Errorf("Column = %v", col)
	}
	if g.Column(5) != nil || g.Column(-1) != nil {
		t.Error("out-of-range column should be nil")
	}
}
