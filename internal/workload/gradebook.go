package workload

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/sheet"
)

// Gradebook is the paper's motivating lookup scenario (§4.3.4): "a popular
// usage of VLOOKUP is to look up grades from a grade table for a collection
// of scores". The main sheet ("scores") holds one approximate-match VLOOKUP
// per student into a sorted boundary table on a second sheet ("grades") —
// a foreign-key join expressed cell by cell.

// Gradebook column layout (main sheet).
const (
	GradeColID    = 0 // "A": ascending student id
	GradeColName  = 1 // "B": student name text
	GradeColScore = 2 // "C": whole-number score 0..100
	GradeColGrade = 3 // "D": =VLOOKUP(C, grades!A:B, 2, TRUE)
	GradeNumCols  = 4
)

// GradeBound is one row of the grade boundary table: scores at or above
// Floor (up to the next boundary) earn Grade.
type GradeBound struct {
	Floor float64
	Grade string
}

// GradeBoundaries is the boundary table written to grades!A2:B6, sorted
// ascending by floor as approximate-match VLOOKUP requires.
var GradeBoundaries = []GradeBound{
	{0, "F"}, {60, "D"}, {70, "C"}, {80, "B"}, {90, "A"},
}

// GradeFor returns the letter grade for a score — the largest boundary
// floor not exceeding it, mirroring approximate-match VLOOKUP semantics.
func GradeFor(score float64) string {
	grade := GradeBoundaries[0].Grade
	for _, b := range GradeBoundaries {
		if score < b.Floor {
			break
		}
		grade = b.Grade
	}
	return grade
}

// GradeScoreAt returns the whole-number score of the given data row.
func GradeScoreAt(seed uint64, dataRow int) float64 {
	return float64(rowRand(seed, dataRow, GradeColScore) % 101)
}

// Gradebook generates the two-sheet gradebook workbook per the spec.
// Spec.Rows counts student rows; the grades sheet has fixed shape. With
// Spec.Formulas off, the grade column carries the looked-up letters as
// plain text.
func Gradebook(spec Spec) *sheet.Workbook {
	seed := spec.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	n := spec.Rows
	rows := n + 1
	var g sheet.Grid
	if spec.Columnar {
		g = sheet.NewColGrid(rows, GradeNumCols)
	} else {
		g = sheet.NewRowGrid(rows, GradeNumCols)
	}
	scores := sheet.NewWithGrid("scores", g)
	for c, t := range []string{"id", "name", "score", "grade"} {
		scores.SetValue(cell.Addr{Row: 0, Col: c}, cell.Str(t))
	}

	var gradeF *formula.Compiled
	if spec.Formulas {
		gradeF = formula.MustCompile(fmt.Sprintf(
			"=VLOOKUP(C2,grades!A$2:B$%d,2,TRUE)", len(GradeBoundaries)+1))
	}
	for dr := 1; dr <= n; dr++ {
		score := GradeScoreAt(seed, dr)
		scores.SetValue(cell.Addr{Row: dr, Col: GradeColID}, cell.Num(float64(dr)))
		scores.SetValue(cell.Addr{Row: dr, Col: GradeColName}, cell.Str(fmt.Sprintf("s%04d", dr)))
		scores.SetValue(cell.Addr{Row: dr, Col: GradeColScore}, cell.Num(score))
		if spec.Formulas {
			scores.AttachFormula(cell.Addr{Row: dr, Col: GradeColGrade},
				sheet.Formula{Code: gradeF, Origin: cell.Addr{Row: 1, Col: GradeColGrade}})
		} else {
			scores.SetValue(cell.Addr{Row: dr, Col: GradeColGrade}, cell.Str(GradeFor(score)))
		}
	}

	grades := sheet.New("grades", len(GradeBoundaries)+1, 2)
	grades.SetValue(cell.Addr{Row: 0, Col: 0}, cell.Str("floor"))
	grades.SetValue(cell.Addr{Row: 0, Col: 1}, cell.Str("grade"))
	for i, b := range GradeBoundaries {
		grades.SetValue(cell.Addr{Row: i + 1, Col: 0}, cell.Num(b.Floor))
		grades.SetValue(cell.Addr{Row: i + 1, Col: 1}, cell.Str(b.Grade))
	}

	wb := sheet.NewWorkbook()
	for _, s := range []*sheet.Sheet{scores, grades} {
		if err := wb.Add(s); err != nil {
			panic(err) // fresh workbook; cannot collide
		}
	}
	return wb
}
