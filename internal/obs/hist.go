package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// LatencyHist is an HDR-style log-bucketed histogram over int64 nanosecond
// values. Buckets follow a base-2 layout with latSub subdivisions per
// octave, so the relative quantization error of any reported percentile is
// bounded by one bucket width (at most 1/latSub = 25% of the value). The
// bucket boundaries are fixed — output derived from one is deterministic
// for deterministic inputs (the engine records simulated nanoseconds).
//
// Unlike the Registry instruments, LatencyHist does NOT consult the package
// enable gate: the SLO checker rebuilds percentile state from a finished
// trace after the gate has been switched off, so the structure must stay a
// pure data type. Gated recording lives in the Latency wrapper (metrics.go).
type LatencyHist struct {
	counts [latBuckets]atomic.Int64
	count  atomic.Int64
}

const (
	// latSubBits subdivides each power-of-two octave into 1<<latSubBits
	// buckets.
	latSubBits = 2
	latSub     = 1 << latSubBits
	// latBuckets covers the full non-negative int64 range: values below
	// latSub map to their own index; above, index = 4*exp + (v>>exp) with
	// exp <= 60, so the maximum index is 247.
	latBuckets = 256
)

// latIndex maps a non-negative value to its bucket index.
func latIndex(v int64) int {
	if v < latSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 - latSubBits
	return exp<<latSubBits + int(v>>uint(exp))
}

// latUpper returns the bucket's inclusive upper bound.
func latUpper(idx int) int64 {
	if idx < latSub {
		return int64(idx)
	}
	exp := idx>>latSubBits - 1
	sub := int64(idx) - int64(exp)<<latSubBits
	return (sub+1)<<uint(exp) - 1
}

// BucketWidthNS returns the width of the histogram bucket containing v —
// the quantization bound a reported percentile carries at that magnitude.
func BucketWidthNS(v int64) int64 {
	if v < latSub {
		return 1
	}
	exp := bits.Len64(uint64(v)) - 1 - latSubBits
	return 1 << uint(exp)
}

// Record adds one observation. Negative values clamp to zero.
func (h *LatencyHist) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[latIndex(ns)].Add(1)
	h.count.Add(1)
}

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() int64 { return h.count.Load() }

// Percentile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket holding the rank-⌈q·count⌉ observation; zero when empty. The true
// order statistic lies within one bucket width below the returned value.
func (h *LatencyHist) Percentile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < latBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			return latUpper(i)
		}
	}
	return latUpper(latBuckets - 1)
}

// Reset zeroes the histogram.
func (h *LatencyHist) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
}

// LatencyBucket is one non-empty bucket of an exported histogram.
type LatencyBucket struct {
	// UpperNS is the bucket's inclusive upper bound in nanoseconds.
	UpperNS int64 `json:"upper_ns"`
	Count   int64 `json:"count"`
}

// LatencyHistSnap is the sparse exported form of a LatencyHist: only
// non-empty buckets, in ascending bound order.
type LatencyHistSnap struct {
	Count   int64           `json:"count"`
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

// Snap exports the histogram's non-empty buckets.
func (h *LatencyHist) Snap() LatencyHistSnap {
	s := LatencyHistSnap{Count: h.count.Load()}
	for i := 0; i < latBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, LatencyBucket{UpperNS: latUpper(i), Count: c})
		}
	}
	return s
}

// Quantile computes a percentile from the exported sparse form, with the
// same bucket-upper-bound semantics as LatencyHist.Percentile.
func (s LatencyHistSnap) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.UpperNS
		}
	}
	if n := len(s.Buckets); n > 0 {
		return s.Buckets[n-1].UpperNS
	}
	return 0
}
