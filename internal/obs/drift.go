package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// The plan-drift monitor compares, at each planner gate the engine
// consults, the cost the plan predicted for the gated work against the
// meter delta the engine actually charged while doing it. Both sides are
// scalarized to simulated nanoseconds under the same profile coefficients,
// so the per-gate ratio (measured / predicted) reads directly as a
// calibration factor: 1.0 is a perfect cost model, and a ratio drifting
// outside [DriftCalibratedMin, DriftCalibratedMax] flags miscalibration at
// run time — the moment a workload shifts, not at the next offline
// calibration pass.

// DriftRatioBounds are the fixed per-observation ratio buckets; 0.5 and
// 2.0 — the calibration band edges — are boundaries so the out-of-band
// mass is readable off the histogram. The trailing implicit bucket holds
// ratios above the last bound.
var DriftRatioBounds = []float64{0.25, 0.5, 0.8, 1.0, 1.25, 2.0, 4.0}

// The aggregate-ratio band inside which a gate counts as calibrated,
// matching the plan package's prediction-within-2x validation target.
const (
	DriftCalibratedMin = 0.5
	DriftCalibratedMax = 2.0
)

// Drift accumulates predicted-vs-measured observations per (profile, gate).
// Like SLO it is constructed explicitly and never dropped by the package
// gate on the read side; recording is gated so unobserved runs stay free.
type Drift struct {
	mu    sync.Mutex
	stats map[driftKey]*driftStat // guarded by mu
}

type driftKey struct{ profile, gate string }

type driftStat struct {
	count    int64
	predNS   int64
	measNS   int64
	minRatio float64
	maxRatio float64
	buckets  []int64 // len(DriftRatioBounds)+1, last is overflow
}

// NewDrift returns an empty monitor.
func NewDrift() *Drift {
	return &Drift{stats: make(map[driftKey]*driftStat)}
}

// DefaultDrift is the package-level monitor the engine's planner gates
// record into.
var DefaultDrift = NewDrift()

// Observe records one gate observation when the layer is enabled. predNS
// and measNS are the predicted and measured work scalarized to simulated
// nanoseconds under the same coefficients.
func (d *Drift) Observe(profile, gate string, predNS, measNS int64) {
	if d == nil || !enabled.Load() {
		return
	}
	ratio := 0.0
	if predNS > 0 {
		ratio = float64(measNS) / float64(predNS)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.stats[driftKey{profile, gate}]
	if !ok {
		st = &driftStat{buckets: make([]int64, len(DriftRatioBounds)+1)}
		d.stats[driftKey{profile, gate}] = st
	}
	if st.count == 0 || ratio < st.minRatio {
		st.minRatio = ratio
	}
	if st.count == 0 || ratio > st.maxRatio {
		st.maxRatio = ratio
	}
	st.count++
	st.predNS += predNS
	st.measNS += measNS
	st.buckets[sort.SearchFloat64s(DriftRatioBounds, ratio)]++
}

// Reset drops every accumulated observation.
func (d *Drift) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = make(map[driftKey]*driftStat)
}

// DriftGate is one (profile, gate) row of a report. Ratio is the aggregate
// sum(measured)/sum(predicted) — the amortization-aligned view, since
// one-time build costs the plan spreads over a site's uses align on totals,
// not on individual observations. MinRatio/MaxRatio and Buckets describe
// the per-observation distribution.
type DriftGate struct {
	Profile    string  `json:"profile"`
	Gate       string  `json:"gate"`
	Count      int64   `json:"count"`
	PredMS     float64 `json:"pred_ms"`
	MeasMS     float64 `json:"meas_ms"`
	Ratio      float64 `json:"ratio"`
	MinRatio   float64 `json:"min_ratio"`
	MaxRatio   float64 `json:"max_ratio"`
	Calibrated bool    `json:"calibrated"`
	// Buckets counts per-observation ratios against DriftRatioBounds, with
	// one trailing overflow entry.
	Buckets []int64 `json:"buckets"`
}

// DriftReport is a monitor's summary, rows sorted by (profile, gate).
type DriftReport struct {
	RatioBounds []float64   `json:"ratio_bounds"`
	Gates       []DriftGate `json:"gates"`
}

// Calibrated reports whether every gate's aggregate ratio sits inside the
// calibration band.
func (r *DriftReport) Calibrated() bool {
	for _, g := range r.Gates {
		if !g.Calibrated {
			return false
		}
	}
	return true
}

// Report summarizes the monitor's observations.
func (d *Drift) Report() *DriftReport {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := &DriftReport{RatioBounds: append([]float64(nil), DriftRatioBounds...)}
	for k, st := range d.stats {
		g := DriftGate{
			Profile:  k.profile,
			Gate:     k.gate,
			Count:    st.count,
			PredMS:   float64(st.predNS) / float64(time.Millisecond),
			MeasMS:   float64(st.measNS) / float64(time.Millisecond),
			MinRatio: st.minRatio,
			MaxRatio: st.maxRatio,
			Buckets:  append([]int64(nil), st.buckets...),
		}
		if st.predNS > 0 {
			g.Ratio = float64(st.measNS) / float64(st.predNS)
		}
		g.Calibrated = g.Ratio >= DriftCalibratedMin && g.Ratio <= DriftCalibratedMax
		rep.Gates = append(rep.Gates, g)
	}
	sort.Slice(rep.Gates, func(i, j int) bool {
		return snapLess(rep.Gates[i].Profile, rep.Gates[i].Gate, rep.Gates[j].Profile, rep.Gates[j].Gate)
	})
	return rep
}

// WriteText renders the report as an aligned table.
func (r *DriftReport) WriteText(w io.Writer) error {
	verdict := "CALIBRATED"
	if !r.Calibrated() {
		verdict = "DRIFT"
	}
	if _, err := fmt.Fprintf(w, "Plan drift (band [%.1f, %.1f]): %s\n",
		DriftCalibratedMin, DriftCalibratedMax, verdict); err != nil {
		return err
	}
	for _, g := range r.Gates {
		mark := "ok"
		if !g.Calibrated {
			mark = "DRIFT"
		}
		if _, err := fmt.Fprintf(w, "  %-10s %-14s %5d obs  pred %10.3f ms  meas %10.3f ms  ratio %6.3f [%6.3f, %6.3f]  %s\n",
			g.Profile, g.Gate, g.Count, g.PredMS, g.MeasMS, g.Ratio, g.MinRatio, g.MaxRatio, mark); err != nil {
			return err
		}
	}
	return nil
}
