// Package returnbad discards write errors in every way returncheck flags.
package returnbad

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// WriteHeader drops the Fprintf error to a real io.Writer parameter.
func WriteHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "%s\n", title) // want: Fprintf error discarded
}

// WriteLines drops Fprintln and io.WriteString errors.
func WriteLines(w io.Writer, lines []string) {
	for _, l := range lines {
		fmt.Fprintln(w, l)      // want: Fprintln error discarded
		io.WriteString(w, "\n") // want: WriteString error discarded
	}
}

// SaveFile drops the error of a direct file write.
func SaveFile(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	f.Write(data)           // want: Write error discarded
	f.WriteString("done\n") // want: WriteString error discarded
}

// FlushDropped buffers writes but never checks the sticky error.
func FlushDropped(w io.Writer, data []byte) {
	bw := bufio.NewWriter(w)
	bw.Write(data) // buffered: not flagged here...
	bw.Flush()     // want: ...but the discarded Flush is
}
