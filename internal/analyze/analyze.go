// Package analyze is a static analyzer for loaded workbooks. It walks
// compiled formula ASTs (internal/formula) and a dependency graph
// (internal/graph) without evaluating anything, and emits typed Findings:
// volatile-function blast radii, oversized range scans (the paper's
// AGG-on-500k pathology), shared-subexpression candidates (the direct
// precursor to the §5.3/§6 shared-computation optimization), constant-
// foldable subexpressions, cross-type comparisons, reference cycles, and a
// static recalculation-cost estimate per formula and per workbook.
//
// The paper's central OOT finding is that Excel, Calc, and Sheets execute
// formulas with essentially no prior analysis; this package is the analysis
// pass that every optimization the ROADMAP plans builds on. The optimized
// engine profile already consults it at install time (see
// SharedColumnAggregates and internal/engine/optimized.go).
package analyze

import (
	"sort"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/graph"
	"repro/internal/regions"
	"repro/internal/sheet"
	"repro/internal/typecheck"
)

// Rule identifiers, one per analysis. Stable: they appear in JSON output
// and golden files.
const (
	RuleVolatile     = "volatile-recalc"
	RuleWideRange    = "wide-range"
	RuleSharedSubexp = "shared-subexpr"
	RuleConstFold    = "const-fold"
	RuleTypeMismatch = "type-mismatch"
	RuleCycle        = "cycle"
	RuleHotFormula   = "hot-formula"
	RuleErrorBlast   = "error-blast-radius"
	RuleCoercion     = "coercion-hot-path"
	RuleBrokenFill   = "broken-fill"
	// RuleParallelBlocker flags the cells whose formulas keep the sheet's
	// parallel-safety certificate (internal/interfere) from staging.
	RuleParallelBlocker = "parallel-blocker"
	// RuleUnsortedLookup flags lookups that scan a numeric key column
	// linearly when sorting it would certify binary search
	// (internal/absint).
	RuleUnsortedLookup = "unsorted-lookup"
)

// Severity ranks findings. High findings change results or dominate recalc
// cost; Warn findings waste work; Info findings are opportunities.
type Severity uint8

// Severity levels, least severe first so numeric comparison works.
const (
	Info Severity = iota
	Warn
	High
)

// String returns the lowercase level name.
func (s Severity) String() string {
	switch s {
	case High:
		return "high"
	case Warn:
		return "warn"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Finding is one analyzer diagnostic, anchored to a cell.
type Finding struct {
	// Rule is the Rule* identifier that produced the finding.
	Rule string `json:"rule"`
	// Severity ranks the finding.
	Severity Severity `json:"severity"`
	// Sheet is the worksheet name.
	Sheet string `json:"sheet"`
	// Cell is the anchor cell in A1 notation.
	Cell string `json:"cell"`
	// Message is the human-readable diagnosis.
	Message string `json:"message"`
	// Cost is the rule-specific magnitude (blast radius, cells scanned,
	// estimated ops saved or spent); zero when not meaningful.
	Cost int64 `json:"cost,omitempty"`
}

// Options tunes the analyzer. The zero value selects the defaults below.
type Options struct {
	// WideRangeCells is the precedent-range size from which RuleWideRange
	// fires (default 4096 cells).
	WideRangeCells int
	// SharedMin is the occurrence count from which a repeated subtree
	// becomes a RuleSharedSubexp candidate (default 3).
	SharedMin int
	// HotCostMin is the static recalc-cost threshold for RuleHotFormula
	// findings (default 4096).
	HotCostMin int64
	// TypeSampleLimit caps how many cells of a range the type-mismatch
	// rule samples (default 64).
	TypeSampleLimit int
	// MaxFindingsPerRule caps emitted findings per rule per sheet; counts
	// in RuleCounts are always complete. Default 25; -1 removes the cap.
	MaxFindingsPerRule int
	// ErrorBlastMin is the transitive-dependent count from which an
	// error-possible formula becomes a RuleErrorBlast finding (default 4).
	ErrorBlastMin int
	// CoercionMinCells is the range size from which a numeric-criterion
	// aggregate over possibly-text cells becomes a RuleCoercion finding
	// (default 128).
	CoercionMinCells int
	// BrokenFillMin is the formula count a column needs before its fill
	// uniformity is judged by RuleBrokenFill (default 16).
	BrokenFillMin int
	// UnsortedLookupMin is the key-span size from which an unsorted linear
	// lookup becomes a RuleUnsortedLookup finding (default 64).
	UnsortedLookupMin int
}

func (o Options) withDefaults() Options {
	if o.WideRangeCells == 0 {
		o.WideRangeCells = 4096
	}
	if o.SharedMin == 0 {
		o.SharedMin = 3
	}
	if o.HotCostMin == 0 {
		o.HotCostMin = 4096
	}
	if o.TypeSampleLimit == 0 {
		o.TypeSampleLimit = 64
	}
	if o.MaxFindingsPerRule == 0 {
		o.MaxFindingsPerRule = 25
	}
	if o.ErrorBlastMin == 0 {
		o.ErrorBlastMin = 4
	}
	if o.CoercionMinCells == 0 {
		o.CoercionMinCells = 128
	}
	if o.BrokenFillMin == 0 {
		o.BrokenFillMin = 16
	}
	if o.UnsortedLookupMin == 0 {
		o.UnsortedLookupMin = 64
	}
	return o
}

// SheetReport is the analysis result for one worksheet.
type SheetReport struct {
	// Sheet is the worksheet name.
	Sheet string `json:"sheet"`
	// Formulas is the number of formula cells analyzed.
	Formulas int `json:"formulas"`
	// EstRecalcOps is the static estimate of the dependency-graph
	// maintenance ops a full recalculation's sequencing pass costs; see
	// EstimateRecalcOps for the model it mirrors.
	EstRecalcOps int64 `json:"est_recalc_ops"`
	// EstEvalCells estimates how many cell reads one full evaluation pass
	// performs. It is the total precedent-cell cardinality of all
	// formulas, except that lookups served sub-linearly by the optimized
	// engine (hash-indexed exact VLOOKUP, binary search over
	// ascending-certified key columns — see internal/absint) are charged
	// their probe count instead of a linear table scan.
	EstEvalCells int64 `json:"est_eval_cells"`
	// Regions is the number of uniform fill regions the formulas collapse
	// to (internal/regions); equal-shape fill columns count once.
	Regions int `json:"regions"`
	// CompressionRatio is formula cells per region — the node-count
	// advantage a region-level dependency graph has over per-cell.
	CompressionRatio float64 `json:"compression_ratio"`
	// RuleCounts maps rule ID to the complete finding count, including
	// findings dropped by the per-rule cap.
	RuleCounts map[string]int `json:"rule_counts"`
	// Findings holds the emitted findings, most severe first.
	Findings []Finding `json:"findings"`
}

// Report is the analysis result for a workbook.
type Report struct {
	// Sheets holds one report per worksheet, in tab order.
	Sheets []*SheetReport `json:"sheets"`
	// Formulas is the workbook-wide formula count.
	Formulas int `json:"formulas"`
	// Findings is the workbook-wide complete finding count.
	Findings int `json:"findings"`
	// EstRecalcOps sums the per-sheet sequencing estimates.
	EstRecalcOps int64 `json:"est_recalc_ops"`
}

// formulaSite is one formula cell prepared for analysis: its address, the
// compiled code, and the displacement of the cell from the formula's
// authored origin (relative references shift by this much).
type formulaSite struct {
	at     cell.Addr
	code   *formula.Compiled
	dr, dc int
}

// Workbook analyzes every sheet of a workbook.
func Workbook(wb *sheet.Workbook, opt Options) *Report {
	opt = opt.withDefaults()
	rep := &Report{}
	for _, s := range wb.Sheets() {
		sr := analyzeSheet(s, opt)
		rep.Sheets = append(rep.Sheets, sr)
		rep.Formulas += sr.Formulas
		rep.EstRecalcOps += sr.EstRecalcOps
		for _, n := range sr.RuleCounts {
			rep.Findings += n
		}
	}
	return rep
}

// SheetReportFor analyzes a single sheet.
func SheetReportFor(s *sheet.Sheet, opt Options) *SheetReport {
	return analyzeSheet(s, opt.withDefaults())
}

// analyzeSheet runs every rule over one sheet. opt has defaults applied.
func analyzeSheet(s *sheet.Sheet, opt Options) *SheetReport {
	sr := &SheetReport{Sheet: s.Name, RuleCounts: make(map[string]int)}

	sites := collectSites(s)
	sr.Formulas = len(sites)

	// The analyzer's private dependency graph; the engine's own graphs and
	// meters are never touched.
	g := graph.New()
	for _, f := range sites {
		g.SetFormula(f.at, f.code.PrecedentRanges(f.dr, f.dc))
	}

	emit := newEmitter(sr, opt)
	shared := newSharedScan()

	// One inference pass (internal/typecheck) shared by the type- and
	// error-flow rules; like the graph above it is private to the analyzer.
	inf := typecheck.InferSheet(s)

	// The lookup view (value analysis + sortedness rescans) materializes
	// lazily on the first classifiable lookup call, so lookup-free sheets
	// skip the absint pass entirely.
	lv := newLookupView(s)

	for _, f := range sites {
		checkVolatile(emit, s, g, f)
		checkWideRange(emit, s, f, opt)
		checkConstFold(emit, s, f)
		checkTypes(emit, s, f, opt)
		checkHotFormula(emit, s, g, f, opt, lv)
		checkErrorBlast(emit, s, g, inf, f, opt)
		checkCoercion(emit, s, inf, f, opt)
		checkUnsortedLookup(emit, s, f, lv, opt)
		shared.add(f)
		sr.EstEvalCells += lv.estEvalCells(f)
	}

	shared.report(emit, opt)
	checkCycles(emit, s, g)

	// Region inference (internal/regions) backs both the fill-uniformity
	// rule and the report's compression metrics.
	regs := regions.Infer(s)
	sr.Regions = len(regs.Regions)
	sr.CompressionRatio = regs.CompressionRatio()
	checkBrokenFill(emit, s, regs, opt)
	checkParallelBlockers(emit, s, regs)

	sr.EstRecalcOps = EstimateRecalcOps(sites)

	emit.finish()
	return sr
}

// collectSites gathers the sheet's formulas in row-major order (EachFormula
// iterates a map; analysis output must be deterministic).
func collectSites(s *sheet.Sheet) []formulaSite {
	sites := make([]formulaSite, 0, s.FormulaCount())
	s.EachFormula(func(a cell.Addr, fc sheet.Formula) bool {
		dr, dc := fc.DeltaAt(a)
		sites = append(sites, formulaSite{at: a, code: fc.Code, dr: dr, dc: dc})
		return true
	})
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].at.Row != sites[j].at.Row {
			return sites[i].at.Row < sites[j].at.Row
		}
		return sites[i].at.Col < sites[j].at.Col
	})
	return sites
}

// emitter applies the per-rule cap and keeps the complete counts.
type emitter struct {
	sr  *SheetReport
	cap int
}

func newEmitter(sr *SheetReport, opt Options) *emitter {
	return &emitter{sr: sr, cap: opt.MaxFindingsPerRule}
}

func (e *emitter) emit(f Finding) {
	e.sr.RuleCounts[f.Rule]++
	if e.cap >= 0 && e.sr.RuleCounts[f.Rule] > e.cap {
		return
	}
	e.sr.Findings = append(e.sr.Findings, f)
}

// finish orders findings for presentation: most severe first, then by rule,
// then by cell position.
func (e *emitter) finish() {
	fs := e.sr.Findings
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Rule != fs[j].Rule {
			return fs[i].Rule < fs[j].Rule
		}
		ai, _ := cell.ParseAddr(fs[i].Cell)
		aj, _ := cell.ParseAddr(fs[j].Cell)
		if ai.Row != aj.Row {
			return ai.Row < aj.Row
		}
		return ai.Col < aj.Col
	})
}

// shiftRef translates a reference by the site displacement the way the
// evaluator would (absolute components stay put).
func shiftRef(r cell.Ref, dr, dc int) cell.Addr {
	a := r.Addr
	if !r.AbsRow {
		a.Row += dr
	}
	if !r.AbsCol {
		a.Col += dc
	}
	return a
}

// shiftRange translates a range node by the site displacement.
func shiftRange(rn formula.RangeNode, dr, dc int) cell.Range {
	return cell.RangeOf(shiftRef(rn.From, dr, dc), shiftRef(rn.To, dr, dc))
}

// describe renders a formula site's effective text (references shifted to
// where the cell sits), truncated for report hygiene.
func describe(f formulaSite) string {
	t := f.code.RewriteRelative(f.dr, f.dc)
	if len(t) > 60 {
		t = t[:57] + "..."
	}
	return t
}

// subtreeText renders one subtree's effective text, truncated.
func subtreeText(n formula.Node, dr, dc int) string {
	t := formula.ShiftedText(n, dr, dc)
	if len(t) > 48 {
		t = t[:45] + "..."
	}
	return t
}
