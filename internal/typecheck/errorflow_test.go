// Error-flow agreement tests: for the absorption and propagation shapes
// the ISSUE singles out (IFERROR / ISERROR absorbing, MOD and division
// propagating #DIV/0!), the evaluator's concrete result and the typecheck
// lattice must agree — every observed value admitted, and absorbed errors
// absent from the inferred possibility set.
package typecheck_test

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/engine"
	"repro/internal/formula"
	"repro/internal/sheet"
	"repro/internal/typecheck"
)

// evalSheet installs the sheet in a plain desktop engine so every formula
// cache is the evaluator's concrete result.
func evalSheet(t *testing.T, s *sheet.Sheet) {
	t.Helper()
	wb := sheet.NewWorkbook()
	if err := wb.Add(s); err != nil {
		t.Fatal(err)
	}
	if err := engine.New(engine.ExcelProfile()).Install(wb); err != nil {
		t.Fatal(err)
	}
}

func mkSheet(t *testing.T, values map[string]cell.Value, formulas map[string]string) *sheet.Sheet {
	t.Helper()
	s := sheet.New("test", 12, 8)
	for a1, v := range values {
		s.SetValue(cell.MustParseAddr(a1), v)
	}
	for a1, text := range formulas {
		c, err := formula.Compile(text)
		if err != nil {
			t.Fatalf("compile %q: %v", text, err)
		}
		s.SetFormula(cell.MustParseAddr(a1), c)
	}
	return s
}

func TestErrorFlowAgreement(t *testing.T) {
	cases := []struct {
		name     string
		values   map[string]cell.Value
		formula  string
		want     cell.Value // evaluator result
		inferred typecheck.Abstract
	}{
		{
			name:     "MOD by zero propagates DIV0",
			values:   map[string]cell.Value{"A1": cell.Num(7), "A2": cell.Num(0)},
			formula:  "=MOD(A1,A2)",
			want:     cell.Errorf(cell.ErrDiv0),
			inferred: typecheck.Abstract{Kinds: typecheck.KNumber, Errs: typecheck.EDiv0},
		},
		{
			name:     "MOD by nonzero literal excludes DIV0",
			values:   map[string]cell.Value{"A1": cell.Num(7)},
			formula:  "=MOD(A1,3)",
			want:     cell.Num(1),
			inferred: typecheck.Abstract{Kinds: typecheck.KNumber},
		},
		{
			name:     "division by zero cell propagates DIV0",
			values:   map[string]cell.Value{"A1": cell.Num(7), "A2": cell.Num(0)},
			formula:  "=A1/A2",
			want:     cell.Errorf(cell.ErrDiv0),
			inferred: typecheck.Abstract{Kinds: typecheck.KNumber, Errs: typecheck.EDiv0},
		},
		{
			name:     "DIV0 propagates through arithmetic",
			values:   map[string]cell.Value{"A1": cell.Num(7), "A2": cell.Num(0)},
			formula:  "=(A1/A2)+1",
			want:     cell.Errorf(cell.ErrDiv0),
			inferred: typecheck.Abstract{Kinds: typecheck.KNumber, Errs: typecheck.EDiv0},
		},
		{
			name:     "DIV0 propagates through SUM",
			values:   map[string]cell.Value{"A1": cell.Errorf(cell.ErrDiv0)},
			formula:  "=SUM(A1:A3)",
			want:     cell.Errorf(cell.ErrDiv0),
			inferred: typecheck.Abstract{Kinds: typecheck.KNumber, Errs: typecheck.EDiv0},
		},
		{
			name:     "IFERROR absorbs MOD's DIV0",
			values:   map[string]cell.Value{"A1": cell.Num(7), "A2": cell.Num(0)},
			formula:  `=IFERROR(MOD(A1,A2),"fallback")`,
			want:     cell.Str("fallback"),
			inferred: typecheck.Abstract{Kinds: typecheck.KNumber | typecheck.KText},
		},
		{
			name:     "IFERROR over clean input never takes the fallback",
			values:   map[string]cell.Value{"A1": cell.Num(7)},
			formula:  `=IFERROR(MOD(A1,3),"fallback")`,
			want:     cell.Num(1),
			inferred: typecheck.Abstract{Kinds: typecheck.KNumber},
		},
		{
			name:     "ISERROR absorbs to a boolean",
			values:   map[string]cell.Value{"A1": cell.Num(7), "A2": cell.Num(0)},
			formula:  "=ISERROR(A1/A2)",
			want:     cell.Boolean(true),
			inferred: typecheck.Abstract{Kinds: typecheck.KBool},
		},
		{
			name:     "ISERROR on a clean value is still just a boolean",
			values:   map[string]cell.Value{"A1": cell.Num(7)},
			formula:  "=ISERROR(A1)",
			want:     cell.Boolean(false),
			inferred: typecheck.Abstract{Kinds: typecheck.KBool},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mkSheet(t, tc.values, map[string]string{"D1": tc.formula})
			d1 := cell.MustParseAddr("D1")
			// Inference runs before evaluation — it must not need results.
			ab := typecheck.InferSheet(s).At(d1)
			if ab != tc.inferred {
				t.Errorf("inferred %v, want %v", ab, tc.inferred)
			}
			evalSheet(t, s)
			got := s.Value(d1)
			if !got.Equal(tc.want) || got.Kind != tc.want.Kind {
				t.Errorf("evaluator = %v, want %v", got, tc.want)
			}
			if !ab.Admits(got) {
				t.Errorf("soundness: %v not admitted by %v", got, ab)
			}
		})
	}
}

// TestAbsorbedErrorsStayAbsorbed pins the absorption property itself: the
// inferred error set of an IFERROR/ISERROR wrapper must not contain the
// wrapped error, so downstream blast-radius analysis never counts it.
func TestAbsorbedErrorsStayAbsorbed(t *testing.T) {
	s := mkSheet(t, map[string]cell.Value{"A1": cell.Num(1), "A2": cell.Num(0)}, map[string]string{
		"B1": "=IFERROR(A1/A2,0)",
		"B2": "=ISERROR(MOD(A1,A2))",
		"B3": "=B1+B2", // depends only on absorbed results
	})
	inf := typecheck.InferSheet(s)
	for _, a1 := range []string{"B1", "B2", "B3"} {
		if ab := inf.At(cell.MustParseAddr(a1)); ab.MayError() {
			t.Errorf("%s: absorbed error leaked into %v", a1, ab)
		}
	}
}
