package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := Run("bct", []string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2-open", "fig14-multi", "ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{
		"-exp", "fig13-incremental", "-trials", "1",
		"-maxrows", "300", "-maxrows-web", "300",
		"-systems", "excel", "-quiet",
	}
	if err := Run("oot", args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig13-incremental") {
		t.Errorf("output missing figure header:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Table 1") {
		t.Error("single-experiment runs should not print the taxonomy")
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	args := []string{
		"-exp", "fig12-redundant", "-trials", "1",
		"-maxrows", "150", "-maxrows-web", "150",
		"-systems", "excel", "-quiet", "-csv", dir,
	}
	if err := Run("oot", args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig12-redundant.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,rows,") {
		t.Errorf("csv header: %q", string(data[:30]))
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := Run("bct", []string{"-exp", "nope"}, &out, &errw); err == nil {
		t.Error("unknown experiment must error")
	}
	if err := Run("bct", []string{"-bogusflag"}, &out, &errw); err == nil {
		t.Error("bad flag must error")
	}
	if err := Run("bct", []string{"-systems", "lotus123", "-exp", "fig13-incremental",
		"-trials", "1", "-maxrows", "150"}, &out, &errw); err == nil {
		t.Error("unknown system must error")
	}
}

func TestRunProgressLines(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{
		"-exp", "fig13-incremental", "-trials", "1",
		"-maxrows", "150", "-maxrows-web", "150", "-systems", "excel",
	}
	if err := Run("oot", args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "running fig13-incremental") {
		t.Errorf("progress missing: %q", errw.String())
	}
}
