package regions

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/formula"
	"repro/internal/sheet"
	"repro/internal/workload"
)

func at(s string) cell.Addr { return cell.MustParseAddr(s) }

// fillDown attaches one compiled formula across a column run with a shared
// origin — the workload's (and xlsx shared-formula) fill-down shape.
func fillDown(s *sheet.Sheet, text string, col, start, end int) *formula.Compiled {
	code := formula.MustCompile(text)
	org := cell.Addr{Row: start, Col: col}
	for r := start; r <= end; r++ {
		s.AttachFormula(cell.Addr{Row: r, Col: col}, sheet.Formula{Code: code, Origin: org})
	}
	return code
}

func TestInferWeatherFormulaColumns(t *testing.T) {
	const rows = 200
	wb := workload.Weather(workload.Spec{Rows: rows, Seed: 7, Formulas: true})
	sr := Infer(wb.First())

	if sr.Formulas != 7*rows {
		t.Fatalf("Formulas = %d, want %d", sr.Formulas, 7*rows)
	}
	if len(sr.Regions) != 7 {
		t.Fatalf("regions = %d (%v), want 7", len(sr.Regions), sr.Regions)
	}
	if len(sr.Classes) != 7 {
		t.Fatalf("classes = %d, want 7", len(sr.Classes))
	}
	for i, r := range sr.Regions {
		if r.Col != workload.ColFormula0+i || r.Start != 1 || r.End != rows {
			t.Errorf("region %d = %+v, want col %d rows 1..%d", i, r, workload.ColFormula0+i, rows)
		}
	}
	if got := sr.CompressionRatio(); got != float64(rows) {
		t.Errorf("compression ratio = %v, want %v", got, rows)
	}
}

// Regions must partition the formula cells: every formula cell belongs to
// exactly one region, and region heights sum to the formula count.
func TestInferPartitionsFormulaCells(t *testing.T) {
	wb := workload.Weather(workload.Spec{Rows: 60, Seed: 3, Formulas: true, Analysis: true})
	s := wb.First()
	sr := Infer(s)

	covered := 0
	for _, r := range sr.Regions {
		covered += r.Rows()
	}
	if covered != sr.Formulas || sr.Formulas != s.FormulaCount() {
		t.Fatalf("regions cover %d cells, Formulas=%d, sheet has %d", covered, sr.Formulas, s.FormulaCount())
	}
	s.EachFormula(func(a cell.Addr, _ sheet.Formula) bool {
		ri := sr.RegionFor(a)
		if ri < 0 || !sr.Regions[ri].Contains(a) {
			t.Fatalf("formula cell %v not covered (RegionFor=%d)", a, ri)
		}
		return true
	})
}

func TestInferSharedCompiledFillDown(t *testing.T) {
	s := sheet.New("S", 12, 4)
	fillDown(s, "=A1+1", 1, 0, 9)
	sr := Infer(s)
	if len(sr.Regions) != 1 || len(sr.Classes) != 1 {
		t.Fatalf("regions=%v classes=%d, want one region, one class", sr.Regions, len(sr.Classes))
	}
	if r := sr.Regions[0]; r.Col != 1 || r.Start != 0 || r.End != 9 {
		t.Fatalf("region = %+v", r)
	}
	if got := sr.Classes[0].Text; got != "(RC[-1]+1)" {
		t.Errorf("class text = %q", got)
	}
}

// Separately compiled formulas (distinct *Compiled, distinct origins) whose
// relative R1C1 forms agree must merge into one region via the hash path.
func TestInferEquivalentTextsMerge(t *testing.T) {
	s := sheet.New("S", 8, 4)
	s.SetFormula(at("B1"), formula.MustCompile("=A1*2"))
	s.SetFormula(at("B2"), formula.MustCompile("=A2*2"))
	s.SetFormula(at("B3"), formula.MustCompile("=A3*2"))
	sr := Infer(s)
	if len(sr.Regions) != 1 || len(sr.Classes) != 1 {
		t.Fatalf("regions=%v classes=%d, want 1 and 1", sr.Regions, len(sr.Classes))
	}
	if r := sr.Regions[0]; r.Start != 0 || r.End != 2 {
		t.Fatalf("region = %+v", r)
	}
}

// A structurally different formula in the middle of a run splits it; each
// resulting region keeps its own class and the deviant shows in Singletons.
func TestInferBreaksOnDeviantCell(t *testing.T) {
	s := sheet.New("S", 8, 4)
	s.SetFormula(at("B1"), formula.MustCompile("=A1"))
	s.SetFormula(at("B2"), formula.MustCompile("=A2+100"))
	s.SetFormula(at("B3"), formula.MustCompile("=A3"))
	sr := Infer(s)
	if len(sr.Regions) != 3 {
		t.Fatalf("regions = %v, want 3 singletons", sr.Regions)
	}
	if len(sr.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(sr.Classes))
	}
	if sr.Regions[0].Class != sr.Regions[2].Class {
		t.Errorf("B1 and B3 should share a class: %v", sr.Regions)
	}
	if got := len(sr.Singletons()); got != 3 {
		t.Errorf("singletons = %d, want 3", got)
	}
}

// A gap (non-formula cell) in a column also ends a region.
func TestInferBreaksOnGap(t *testing.T) {
	s := sheet.New("S", 8, 4)
	s.SetFormula(at("B1"), formula.MustCompile("=A1"))
	s.SetFormula(at("B2"), formula.MustCompile("=A2"))
	s.SetFormula(at("B4"), formula.MustCompile("=A4"))
	sr := Infer(s)
	if len(sr.Regions) != 2 || len(sr.Classes) != 1 {
		t.Fatalf("regions=%v classes=%d", sr.Regions, len(sr.Classes))
	}
}

func TestRegionFor(t *testing.T) {
	s := sheet.New("S", 20, 4)
	fillDown(s, "=A1", 1, 2, 8)
	sr := Infer(s)
	if ri := sr.RegionFor(cell.Addr{Row: 5, Col: 1}); ri != 0 {
		t.Errorf("RegionFor inside = %d", ri)
	}
	for _, a := range []cell.Addr{{Row: 1, Col: 1}, {Row: 9, Col: 1}, {Row: 5, Col: 0}, {Row: 5, Col: 2}} {
		if ri := sr.RegionFor(a); ri != -1 {
			t.Errorf("RegionFor(%v) = %d, want -1", a, ri)
		}
	}
}

func TestSplitAt(t *testing.T) {
	s := sheet.New("S", 20, 4)
	fillDown(s, "=A1", 1, 1, 10)
	sr := Infer(s)

	if sr.SplitAt(cell.Addr{Row: 0, Col: 1}) {
		t.Fatal("SplitAt outside any region should return false")
	}
	if !sr.SplitAt(cell.Addr{Row: 5, Col: 1}) {
		t.Fatal("SplitAt inside region returned false")
	}
	if len(sr.Regions) != 2 {
		t.Fatalf("after mid split: %v", sr.Regions)
	}
	if a, b := sr.Regions[0], sr.Regions[1]; a.Start != 1 || a.End != 4 || b.Start != 6 || b.End != 10 {
		t.Fatalf("split halves = %+v %+v", a, b)
	}
	if sr.Formulas != 9 {
		t.Errorf("Formulas = %d, want 9", sr.Formulas)
	}
	// Splitting at an edge leaves a single shorter region.
	if !sr.SplitAt(cell.Addr{Row: 1, Col: 1}) {
		t.Fatal("edge split returned false")
	}
	if len(sr.Regions) != 2 || sr.Regions[0].Start != 2 {
		t.Fatalf("after edge split: %v", sr.Regions)
	}
	// Splitting a singleton removes it entirely.
	if !sr.SplitAt(cell.Addr{Row: 10, Col: 1}) {
		t.Fatal("want true")
	}
	if !sr.SplitAt(cell.Addr{Row: 6, Col: 1}) || !sr.SplitAt(cell.Addr{Row: 7, Col: 1}) {
		t.Fatal("want true")
	}
	for _, r := range sr.Regions {
		if r.Rows() < 1 {
			t.Fatalf("empty region survived: %v", sr.Regions)
		}
	}
}

func TestCompressionRatioEmpty(t *testing.T) {
	sr := Infer(sheet.New("S", 4, 4))
	if got := sr.CompressionRatio(); got != 1 {
		t.Errorf("empty sheet ratio = %v, want 1", got)
	}
}
