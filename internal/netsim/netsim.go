// Package netsim deterministically simulates the client/server network
// behavior that dominates Google Sheets latencies in the paper (§3.3, §4.1):
// round-trip time, transfer bandwidth, per-API-call overhead, server-load
// jitter (the paper reports "the variance in response times ... was very
// high — possibly due to the variation in the load on the server"), and the
// Google Apps Script daily quotas that truncated the paper's Sheets
// experiments at 90k rows.
package netsim

import (
	"errors"
	"time"
)

// Config describes a simulated network and service.
type Config struct {
	// RTT is the round-trip latency per network exchange.
	RTT time.Duration
	// BytesPerSecond is the transfer bandwidth.
	BytesPerSecond float64
	// CallOverhead is the fixed server-side cost of one scripting API call
	// (auth, dispatch, serialization), paid in addition to RTT.
	CallOverhead time.Duration
	// JitterFraction is the maximum fractional jitter applied to each
	// operation's network time (0.25 = up to ±25%).
	JitterFraction float64
	// Seed makes the jitter sequence reproducible.
	Seed uint64
	// DailyQuota is the total simulated service time budget before calls
	// fail with ErrQuotaExhausted (zero = unlimited). The paper's Sheets
	// runs were "limited by the daily quotas and hard limits imposed by
	// Google Apps Script services".
	DailyQuota time.Duration
	// CallQuota caps the number of API calls (zero = unlimited).
	CallQuota int64
}

// ErrQuotaExhausted is returned once the configured daily quota is consumed.
var ErrQuotaExhausted = errors.New("netsim: daily service quota exhausted")

// Network simulates the link. It is deterministic: the same call sequence
// on the same seed yields the same simulated times.
type Network struct {
	cfg   Config
	rng   uint64
	spent time.Duration
	calls int64
}

// New returns a network simulator for the config.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Network{cfg: cfg, rng: seed}
}

// next returns a uniform float64 in [0,1) from a xorshift64* stream.
func (n *Network) next() float64 {
	x := n.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	n.rng = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// Call simulates one scripting-API round trip moving the given number of
// payload bytes and returns its simulated duration. Quota errors are
// returned once the daily budget is exceeded; the duration of the failing
// call is still reported (the paper's scripts burned quota on timeouts).
func (n *Network) Call(payloadBytes int64) (time.Duration, error) {
	base := n.cfg.RTT + n.cfg.CallOverhead
	if n.cfg.BytesPerSecond > 0 && payloadBytes > 0 {
		base += time.Duration(float64(payloadBytes) / n.cfg.BytesPerSecond * float64(time.Second))
	}
	if n.cfg.JitterFraction > 0 {
		// jitter in [-f, +f]
		j := (n.next()*2 - 1) * n.cfg.JitterFraction
		base += time.Duration(float64(base) * j)
	}
	n.spent += base
	n.calls++
	if n.exhausted() {
		return base, ErrQuotaExhausted
	}
	return base, nil
}

func (n *Network) exhausted() bool {
	if n.cfg.DailyQuota > 0 && n.spent > n.cfg.DailyQuota {
		return true
	}
	if n.cfg.CallQuota > 0 && n.calls > n.cfg.CallQuota {
		return true
	}
	return false
}

// Spent returns the total simulated service time consumed.
func (n *Network) Spent() time.Duration { return n.spent }

// Calls returns the number of API calls made.
func (n *Network) Calls() int64 { return n.calls }

// ResetQuota starts a new "day": quota accounting is zeroed but the jitter
// stream continues (a new day does not replay the old one's noise).
func (n *Network) ResetQuota() {
	n.spent = 0
	n.calls = 0
}
