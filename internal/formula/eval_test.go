package formula

import (
	"math"
	"testing"
	"time"

	"repro/internal/cell"
	"repro/internal/costmodel"
)

// mapSource is a simple formula.Source for tests.
type mapSource map[string]cell.Value

func (m mapSource) Value(a cell.Addr) cell.Value { return m[a.A1()] }

// fixture builds the sheet most function tests evaluate against:
//
//	A: 10, 20, 30, 40, 50     B: text labels     C: mixed
var fixture = mapSource{
	"A1": cell.Num(10), "A2": cell.Num(20), "A3": cell.Num(30),
	"A4": cell.Num(40), "A5": cell.Num(50),
	"B1": cell.Str("storm"), "B2": cell.Str("rain"), "B3": cell.Str("STORM"),
	"B4": cell.Str("snow"), "B5": cell.Str("stormy"),
	"C1": cell.Num(1), "C2": cell.Str("x"), "C3": cell.Value{},
	"C4": cell.Boolean(true), "C5": cell.Num(-3),
	"D1": cell.Num(5), "D2": cell.Num(5), "D3": cell.Num(7),
}

func evalText(t *testing.T, src Source, text string) cell.Value {
	t.Helper()
	c, err := Compile(text)
	if err != nil {
		t.Fatalf("Compile(%q): %v", text, err)
	}
	fixed := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	return Eval(c, &Env{Src: src, Now: func() time.Time { return fixed }})
}

func TestArithmeticAndComparison(t *testing.T) {
	cases := []struct {
		in   string
		want cell.Value
	}{
		{"=1+2", cell.Num(3)},
		{"=A1*2", cell.Num(20)},
		{"=A2-A1", cell.Num(10)},
		{"=A1/4", cell.Num(2.5)},
		{"=1/0", cell.Errorf(cell.ErrDiv0)},
		{"=2^10", cell.Num(1024)},
		{"=50%", cell.Num(0.5)},
		{"=-A1", cell.Num(-10)},
		{`="a"&"b"&1`, cell.Str("ab1")},
		{"=A1=10", cell.Boolean(true)},
		{"=A1<>10", cell.Boolean(false)},
		{"=A1<A2", cell.Boolean(true)},
		{"=A1>=10", cell.Boolean(true)},
		{`="STORM"="storm"`, cell.Boolean(true)}, // case-insensitive =
		{`="a"<"b"`, cell.Boolean(true)},
		{`=1+"x"`, cell.Errorf(cell.ErrValue)},
		{`="5"+2`, cell.Num(7)}, // numeric text coerces in arithmetic
		{"=C3+5", cell.Num(5)},  // empty coerces to 0
	}
	for _, c := range cases {
		got := evalText(t, fixture, c.in)
		if !valuesEqual(got, c.want) {
			t.Errorf("%s = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// valuesEqual compares exactly (kind-sensitive, unlike spreadsheet =).
func valuesEqual(a, b cell.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case cell.Number, cell.Bool:
		return a.Num == b.Num || (math.IsNaN(a.Num) && math.IsNaN(b.Num))
	case cell.Text, cell.ErrorVal:
		return a.Str == b.Str
	}
	return true
}

func TestAggregates(t *testing.T) {
	cases := []struct {
		in   string
		want cell.Value
	}{
		{"=SUM(A1:A5)", cell.Num(150)},
		{"=SUM(A1:A5,100)", cell.Num(250)},
		{"=SUM(C1:C5)", cell.Num(-2)}, // skips text/bool/empty per spreadsheet SUM
		{"=AVERAGE(A1:A5)", cell.Num(30)},
		{"=AVERAGE(C3)", cell.Errorf(cell.ErrDiv0)}, // no numbers
		{"=COUNT(A1:A5)", cell.Num(5)},
		{"=COUNT(C1:C5)", cell.Num(2)},
		{"=COUNTA(C1:C5)", cell.Num(4)},
		{"=COUNTBLANK(C1:C5)", cell.Num(1)},
		{"=MIN(A1:A5)", cell.Num(10)},
		{"=MAX(A1:A5)", cell.Num(50)},
		{"=MIN(C5,A1:A5)", cell.Num(-3)},
		{"=PRODUCT(A1:A2)", cell.Num(200)},
		{"=MEDIAN(A1:A5)", cell.Num(30)},
		{"=MEDIAN(A1:A4)", cell.Num(25)},
		{"=LARGE(A1:A5,2)", cell.Num(40)},
		{"=SMALL(A1:A5,1)", cell.Num(10)},
		{"=LARGE(A1:A5,6)", cell.Errorf(cell.ErrValue)},
		{"=RANK(40,A1:A5)", cell.Num(2)},
		{"=RANK(40,A1:A5,1)", cell.Num(4)},
		{"=RANK(41,A1:A5)", cell.Errorf(cell.ErrNA)},
		{"=PERCENTILE(A1:A5,0.5)", cell.Num(30)},
		{"=PERCENTILE(A1:A5,0.25)", cell.Num(20)},
	}
	for _, c := range cases {
		got := evalText(t, fixture, c.in)
		if !valuesEqual(got, c.want) {
			t.Errorf("%s = %+v, want %+v", c.in, got, c.want)
		}
	}
	if v := evalText(t, fixture, "=STDEV(D1:D3)"); math.Abs(v.Num-math.Sqrt(4.0/3)) > 1e-12 {
		t.Errorf("STDEV = %v", v.Num)
	}
	if v := evalText(t, fixture, "=VAR(D1:D3)"); math.Abs(v.Num-4.0/3) > 1e-12 {
		t.Errorf("VAR = %v", v.Num)
	}
}

func TestConditionalAggregates(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{`=COUNTIF(A1:A5,">=30")`, 3},
		{`=COUNTIF(A1:A5,20)`, 1},
		{`=COUNTIF(B1:B5,"storm")`, 2},   // case-insensitive
		{`=COUNTIF(B1:B5,"storm*")`, 3},  // wildcard
		{`=COUNTIF(B1:B5,"<>storm")`, 3}, // negation
		{`=COUNTIF(C1:C5,1)`, 2},         // number 1 and TRUE both match
		{`=SUMIF(A1:A5,">25")`, 120},
		{`=SUMIF(B1:B5,"storm",A1:A5)`, 40}, // rows 1 and 3
		{`=AVERAGEIF(A1:A5,">25")`, 40},
	}
	for _, c := range cases {
		got := evalText(t, fixture, c.in)
		if got.Kind != cell.Number || got.Num != c.want {
			t.Errorf("%s = %+v, want %v", c.in, got, c.want)
		}
	}
	if v := evalText(t, fixture, `=AVERAGEIF(A1:A5,">100")`); !v.IsError() {
		t.Errorf("AVERAGEIF with no matches should error, got %+v", v)
	}
}

func TestLogicFunctions(t *testing.T) {
	cases := []struct {
		in   string
		want cell.Value
	}{
		{`=IF(A1=10,"yes","no")`, cell.Str("yes")},
		{`=IF(A1=11,"yes","no")`, cell.Str("no")},
		{`=IF(FALSE,"x")`, cell.Boolean(false)},
		{`=IFERROR(1/0,"fallback")`, cell.Str("fallback")},
		{`=IFERROR(A1,99)`, cell.Num(10)},
		{"=AND(TRUE,1,A1)", cell.Boolean(true)},
		{"=AND(TRUE,0)", cell.Boolean(false)},
		{"=OR(FALSE,0,A1)", cell.Boolean(true)},
		{"=XOR(TRUE,TRUE)", cell.Boolean(false)},
		{"=XOR(TRUE,FALSE,FALSE)", cell.Boolean(true)},
		{"=NOT(TRUE)", cell.Boolean(false)},
		{"=ISBLANK(C3)", cell.Boolean(true)},
		{"=ISBLANK(C1)", cell.Boolean(false)},
		{"=ISNUMBER(A1)", cell.Boolean(true)},
		{"=ISTEXT(B1)", cell.Boolean(true)},
		{"=ISERROR(1/0)", cell.Boolean(true)},
		{"=ISLOGICAL(C4)", cell.Boolean(true)},
	}
	for _, c := range cases {
		got := evalText(t, fixture, c.in)
		if !valuesEqual(got, c.want) {
			t.Errorf("%s = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestMathFunctions(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"=ABS(-4)", 4},
		{"=SQRT(16)", 4},
		{"=INT(3.7)", 3},
		{"=INT(-3.2)", -4},
		{"=SIGN(-9)", -1},
		{"=ROUND(2.345,2)", 2.35},
		{"=ROUND(2.5)", 3},
		{"=ROUNDUP(2.1)", 3},
		{"=ROUNDDOWN(2.9)", 2},
		{"=ROUNDUP(-2.1)", -3},
		{"=MOD(7,3)", 1},
		{"=MOD(-7,3)", 2}, // sign of divisor
		{"=POWER(2,8)", 256},
		{"=EXP(0)", 1},
		{"=LN(1)", 0},
		{"=LOG10(1000)", 3},
		{"=LOG(8,2)", 3},
		{"=LOG(100)", 2},
	}
	for _, c := range cases {
		got := evalText(t, fixture, c.in)
		if got.Kind != cell.Number || math.Abs(got.Num-c.want) > 1e-9 {
			t.Errorf("%s = %+v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"=SQRT(-1)", "=LN(0)", "=LOG10(-5)", "=MOD(1,0)", "=LOG(8,1)"} {
		if v := evalText(t, fixture, bad); !v.IsError() {
			t.Errorf("%s should error, got %+v", bad, v)
		}
	}
	if v := evalText(t, fixture, "=PI()"); math.Abs(v.Num-math.Pi) > 1e-15 {
		t.Errorf("PI = %v", v.Num)
	}
}

func TestTextFunctions(t *testing.T) {
	cases := []struct {
		in   string
		want cell.Value
	}{
		{`=CONCATENATE("a",1,TRUE)`, cell.Str("a1TRUE")},
		{`=CONCAT(B1,"-",B2)`, cell.Str("storm-rain")},
		{`=LEN("hello")`, cell.Num(5)},
		{`=LEFT("hello",2)`, cell.Str("he")},
		{`=LEFT("hello")`, cell.Str("h")},
		{`=LEFT("hi",10)`, cell.Str("hi")},
		{`=RIGHT("hello",3)`, cell.Str("llo")},
		{`=MID("hello",2,3)`, cell.Str("ell")},
		{`=MID("hello",9,3)`, cell.Str("")},
		{`=LOWER("StOrM")`, cell.Str("storm")},
		{`=UPPER("storm")`, cell.Str("STORM")},
		{`=TRIM("  a   b  ")`, cell.Str("a b")},
		{`=FIND("ll","hello")`, cell.Num(3)},
		{`=FIND("z","hello")`, cell.Errorf(cell.ErrValue)},
		{`=FIND("l","hello",4)`, cell.Num(4)},
		{`=SUBSTITUTE("aaa","a","b")`, cell.Str("bbb")},
		{`=SUBSTITUTE("aaa","a","b",2)`, cell.Str("aba")},
		{`=REPT("ab",3)`, cell.Str("ababab")},
		{`=EXACT("a","A")`, cell.Boolean(false)},
		{`=EXACT("a","a")`, cell.Boolean(true)},
		{`=VALUE("42")`, cell.Num(42)},
		{`=VALUE("x")`, cell.Errorf(cell.ErrValue)},
		{`=TEXTJOIN(",",TRUE,B1:B3)`, cell.Str("storm,rain,STORM")},
		{`=TEXTJOIN("-",TRUE,C1:C3)`, cell.Str("1-x")},
		{`=TEXTJOIN("-",FALSE,C1:C3)`, cell.Str("1-x-")},
	}
	for _, c := range cases {
		got := evalText(t, fixture, c.in)
		if !valuesEqual(got, c.want) {
			t.Errorf("%s = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestLookupFunctions(t *testing.T) {
	// Lookup table: E1:F4 sorted by E.
	src := mapSource{
		"E1": cell.Num(1), "F1": cell.Str("one"),
		"E2": cell.Num(3), "F2": cell.Str("three"),
		"E3": cell.Num(5), "F3": cell.Str("five"),
		"E4": cell.Num(7), "F4": cell.Str("seven"),
	}
	cases := []struct {
		in   string
		want cell.Value
	}{
		{"=VLOOKUP(5,E1:F4,2,FALSE)", cell.Str("five")},
		{"=VLOOKUP(4,E1:F4,2,FALSE)", cell.Errorf(cell.ErrNA)},
		{"=VLOOKUP(4,E1:F4,2,TRUE)", cell.Str("three")}, // floor match
		{"=VLOOKUP(0,E1:F4,2,TRUE)", cell.Errorf(cell.ErrNA)},
		{"=VLOOKUP(7,E1:F4,1,FALSE)", cell.Num(7)},
		{"=VLOOKUP(7,E1:F4,3,FALSE)", cell.Errorf(cell.ErrRef)},
		{"=MATCH(5,E1:E4,0)", cell.Num(3)},
		{"=MATCH(4,E1:E4,0)", cell.Errorf(cell.ErrNA)},
		{"=MATCH(4,E1:E4,1)", cell.Num(2)},
		{"=MATCH(4,E1:E4)", cell.Num(2)}, // mode defaults to 1
		{"=INDEX(E1:F4,2,2)", cell.Str("three")},
		{"=INDEX(E1:E4,4)", cell.Num(7)},
		{"=INDEX(E1:F4,5,1)", cell.Errorf(cell.ErrRef)},
		{"=CHOOSE(2,\"a\",\"b\",\"c\")", cell.Str("b")},
		{"=CHOOSE(4,\"a\",\"b\")", cell.Errorf(cell.ErrValue)},
		{`=SWITCH(3,1,"one",3,"three","dflt")`, cell.Str("three")},
		{`=SWITCH(9,1,"one",3,"three","dflt")`, cell.Str("dflt")},
		{`=SWITCH(9,1,"one",3,"three")`, cell.Errorf(cell.ErrNA)},
	}
	for _, c := range cases {
		got := evalText(t, src, c.in)
		if !valuesEqual(got, c.want) {
			t.Errorf("%s = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestHlookup(t *testing.T) {
	src := mapSource{
		"A1": cell.Num(1), "B1": cell.Num(3), "C1": cell.Num(5),
		"A2": cell.Str("one"), "B2": cell.Str("three"), "C2": cell.Str("five"),
	}
	if v := evalText(t, src, "=HLOOKUP(3,A1:C2,2,FALSE)"); v.Str != "three" {
		t.Errorf("HLOOKUP = %+v", v)
	}
	if v := evalText(t, src, "=HLOOKUP(4,A1:C2,2,TRUE)"); v.Str != "three" {
		t.Errorf("HLOOKUP approx = %+v", v)
	}
}

func TestLookupPolicies(t *testing.T) {
	// Column with the key at position 3 of 100.
	src := make(mapSource)
	for i := 1; i <= 100; i++ {
		src[cell.Addr{Row: i - 1, Col: 0}.A1()] = cell.Num(float64(i))
	}
	compiled := MustCompile("=VLOOKUP(3,A1:A100,1,FALSE)")

	run := func(p LookupPolicy) int64 {
		var m costmodel.Meter
		v := Eval(compiled, &Env{Src: src, Meter: &m, Lookup: p})
		if v.Num != 3 {
			t.Fatalf("lookup result = %+v", v)
		}
		return m.Count(costmodel.Compare)
	}

	full := run(LookupPolicy{})
	early := run(LookupPolicy{ExactEarlyExit: true})
	if full != 100 {
		t.Errorf("full scan compares = %d, want 100 (Calc/Sheets §4.3.4)", full)
	}
	if early != 3 {
		t.Errorf("early-exit compares = %d, want 3 (Excel §4.3.4)", early)
	}

	approx := MustCompile("=VLOOKUP(50,A1:A100,1,TRUE)")
	var m costmodel.Meter
	v := Eval(approx, &Env{Src: src, Meter: &m, Lookup: LookupPolicy{ApproxBinarySearch: true}})
	if v.Num != 50 {
		t.Fatalf("approx result = %+v", v)
	}
	if c := m.Count(costmodel.Compare); c > 8 {
		t.Errorf("binary search compares = %d, want <= ceil(log2(100))", c)
	}
}

func TestVolatileNow(t *testing.T) {
	c := MustCompile("=NOW()")
	if !c.Volatile {
		t.Error("NOW should be volatile")
	}
	fixed := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	v := Eval(c, &Env{Src: fixture, Now: func() time.Time { return fixed }})
	// 2026-07-06 is 46209 days after 1899-12-30.
	want := fixed.Sub(time.Date(1899, 12, 30, 0, 0, 0, 0, time.UTC)).Hours() / 24
	if v.Num != want {
		t.Errorf("NOW = %v, want %v", v.Num, want)
	}
	today := Eval(MustCompile("=TODAY()"), &Env{Src: fixture, Now: func() time.Time {
		return time.Date(2026, 7, 6, 17, 30, 0, 0, time.UTC)
	}})
	if today.Num != want {
		t.Errorf("TODAY = %v, want %v", today.Num, want)
	}
}

func TestUnknownFunctionAndArity(t *testing.T) {
	if v := evalText(t, fixture, "=NOSUCHFN(1)"); v.Str != cell.ErrName {
		t.Errorf("unknown function = %+v, want #NAME?", v)
	}
	if v := evalText(t, fixture, "=SUM()"); v.Str != cell.ErrValue {
		t.Errorf("SUM() = %+v, want #VALUE!", v)
	}
	if v := evalText(t, fixture, "=IF(1,2,3,4)"); v.Str != cell.ErrValue {
		t.Errorf("IF with 4 args = %+v, want #VALUE!", v)
	}
}

func TestRangeInScalarPosition(t *testing.T) {
	if v := evalText(t, fixture, "=A1:A5+1"); v.Str != cell.ErrValue {
		t.Errorf("multi-cell range in scalar position = %+v, want #VALUE!", v)
	}
	if v := evalText(t, fixture, "=A1:A1+1"); v.Num != 11 {
		t.Errorf("1x1 range in scalar position = %+v, want 11", v)
	}
}

func TestErrorPropagation(t *testing.T) {
	src := mapSource{"A1": cell.Errorf(cell.ErrNA), "A2": cell.Num(1)}
	for _, f := range []string{"=A1+1", "=SUM(A1:A2)", "=IF(A1,1,2)", "=ABS(A1)", "=MIN(A1:A2)"} {
		if v := evalText(t, src, f); !v.IsError() {
			t.Errorf("%s should propagate the error, got %+v", f, v)
		}
	}
}

func TestMeterCharges(t *testing.T) {
	var m costmodel.Meter
	c := MustCompile("=SUM(A1:A5)+A1")
	Eval(c, &Env{Src: fixture, Meter: &m})
	if got := m.Count(costmodel.FormulaEval); got != 1 {
		t.Errorf("FormulaEval = %d", got)
	}
	if got := m.Count(costmodel.CellTouch); got != 6 { // 5 range cells + 1 ref
		t.Errorf("CellTouch = %d, want 6", got)
	}
	if got := m.Count(costmodel.RefResolve); got != 1 {
		t.Errorf("RefResolve = %d, want 1 (only the explicit A1)", got)
	}
}

func TestEnvShiftRelativeAndAbsolute(t *testing.T) {
	src := mapSource{
		"A1": cell.Num(1), "A2": cell.Num(2), "A3": cell.Num(3),
	}
	c := MustCompile("=A1+$A$1")
	// Shift down 2 rows: relative A1 -> A3, absolute stays A1.
	v := Eval(c, &Env{Src: src, DR: 2})
	if v.Num != 4 {
		t.Errorf("shifted eval = %v, want A3+$A$1 = 4", v.Num)
	}
	// Range shifting.
	r := MustCompile("=SUM(A1:A2)")
	v = Eval(r, &Env{Src: src, DR: 1})
	if v.Num != 5 {
		t.Errorf("shifted range sum = %v, want A2+A3 = 5", v.Num)
	}
}
